"""Batched what-if evaluation of candidate workflows.

The paper's headline use case is that one state-based estimate costs
milliseconds (§V-C), so configuration tuning, capacity planning and the
experiment grids reduce to *thousands* of estimator evaluations.  This
module turns those thousands of calls from serial-and-cold into
batched-cached-parallel:

* every candidate is evaluated through the memoised BOE model
  (:class:`~repro.core.boe.BOEModel`), so sub-stage solves shared between
  candidates — the ~90 % a coordinate-descent step does not perturb — are
  paid for once;
* a batch can be fanned out over a process pool with deterministic result
  ordering (results come back in candidate order regardless of worker
  scheduling, and each worker runs the same pure code the serial path
  runs, so estimates are bit-identical either way);
* every batch feeds a :class:`SweepReport` — evaluations/s, cache hit
  rate, wall vs CPU time, per-phase breakdown — surfaced by the CLI, the
  examples and ``benchmarks/bench_sweep.py``;
* candidates can also be evaluated *distributionally*
  (:meth:`SweepRunner.simulate_candidates`): a Monte Carlo replication
  ensemble of the ground-truth simulator per candidate, sharing the same
  worker pool, with common random numbers across candidates so two
  configurations rank by paired deltas
  (:meth:`SweepRunner.compare_paired`) rather than two noisy points.

Process-pool semantics: the worker context (cluster, task-time source,
estimator configuration) is pickled once per worker at pool start-up, and
each worker keeps its own task-time cache warm across batches.  The pool
engine is :class:`~repro.service.pool.ResilientPool`: a runner whose
source does not pickle (e.g. a closure-based test stub) degrades to the
serial path with a WARNING and a ``pool.serial_fallback`` count, and a
worker that crashes mid-map (``BrokenProcessPool``) marks the pool broken
(``pool.broken``), finishes the remaining chunks serially, and still
returns complete results bit-identical to an all-serial run — correctness
never depends on the pool.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.cluster import Cluster
from repro.core.boe import BOEModel
from repro.core.bounds import BoundsModel
from repro.core.distributions import Variant
from repro.core.estimator import BOESource, DagEstimator, TaskTimeSource
from repro.core.fingerprint import CacheStats
from repro.core.incremental import ReuseStats, TrajectoryCache
from repro.dag.workflow import Workflow
from repro.errors import EstimationError
from repro.obs.context import clear_context
from repro.obs.metrics import get_metrics, snapshot_delta
from repro.obs.tracer import get_tracer
from repro.service.pool import (
    CancelCheck,
    ResilientPool,
    check_cancel,
    parent_cpu_clock,
)
from repro.service.shm import ShmHandle, pack as shm_pack, release as shm_release
from repro.service.shm import resolve_shared

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class Candidate:
    """One what-if scenario: a workflow, optionally on a different cluster.

    Attributes:
        workflow: the (re-configured) workflow to estimate.
        cluster: cluster override for capacity-planning sweeps; ``None``
            uses the runner's cluster.
        label: report label; defaults to the workflow name.
    """

    workflow: Workflow
    cluster: Optional[Cluster] = None
    label: Optional[str] = None

    @property
    def name(self) -> str:
        return self.label if self.label is not None else self.workflow.name


@dataclass(frozen=True)
class CandidateResult:
    """Outcome of one candidate evaluation.

    Attributes:
        index: position in the submitted batch (results are returned in
            this order).
        label: the candidate's label.
        total_time_s: estimated makespan; ``None`` when infeasible.
        states: number of workflow states of the estimate.
        overhead_s: the estimator's own wall-clock cost for this candidate.
        error: the :class:`~repro.errors.EstimationError` message for an
            infeasible candidate, ``None`` on success.
        pruned: the candidate was rejected by the analytic bound screen
            before estimation (``total_time_s`` is ``None``).
        lower_bound_s / upper_bound_s: the analytic makespan bracket that
            justified the prune (only populated on pruned results).
        prune_reason: which threshold the lower bound exceeded —
            ``"incumbent"`` (caller-supplied incumbent estimate) or
            ``"batch_ref"`` (the evaluated in-batch reference candidate).
    """

    index: int
    label: str
    total_time_s: Optional[float]
    states: int = 0
    overhead_s: float = 0.0
    error: Optional[str] = None
    pruned: bool = False
    lower_bound_s: Optional[float] = None
    upper_bound_s: Optional[float] = None
    prune_reason: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.pruned


@dataclass
class SweepReport:
    """Cumulative observability of a runner's evaluations.

    Attributes:
        candidates: candidates submitted (including infeasible and pruned
            ones — nothing is silently omitted from the accounting).
        succeeded: candidates that produced an estimate.
        infeasible: candidates rejected with an estimation error.
        pruned: candidates skipped by the analytic bound screen; the
            per-reason split is in ``pruned_reasons`` and each skipped
            candidate's bracket is on its :class:`CandidateResult`.
        batches: ``evaluate`` calls served.
        wall_time_s: wall-clock time spent inside ``evaluate``.
        cpu_time_s: CPU time across the parent and every worker process
            (``> wall_time_s`` signals real parallelism).
        processes: configured worker processes (1 = serial).
        pool_used: whether any batch actually ran on the process pool.
        cache: aggregated task-time cache ledger across all processes.
        reuse: aggregated trajectory-reuse ledger (incremental Algorithm 1)
            across all processes; all zeros when reuse is disabled.
        phase_s: wall-clock per phase ("build" candidate normalisation,
            "estimate" the evaluations themselves, "collect" result
            assembly and stats merging).
    """

    candidates: int = 0
    succeeded: int = 0
    infeasible: int = 0
    pruned: int = 0
    pruned_reasons: Dict[str, int] = field(default_factory=dict)
    batches: int = 0
    wall_time_s: float = 0.0
    cpu_time_s: float = 0.0
    processes: int = 1
    pool_used: bool = False
    cache: CacheStats = field(default_factory=CacheStats)
    reuse: ReuseStats = field(default_factory=ReuseStats)
    phase_s: Dict[str, float] = field(default_factory=dict)

    @property
    def evaluations_per_s(self) -> float:
        return self.candidates / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def _phase(self, name: str, seconds: float) -> None:
        self.phase_s[name] = self.phase_s.get(name, 0.0) + seconds

    def describe(self) -> str:
        """One-line summary for CLI / benchmark output."""
        reuse = (
            f", trajectories {self.reuse.describe()}" if self.reuse.lookups else ""
        )
        pruned = f", {self.pruned} pruned" if self.pruned else ""
        return (
            f"{self.candidates} evaluations ({self.infeasible} infeasible"
            f"{pruned}) in "
            f"{self.wall_time_s * 1000:.0f} ms "
            f"({self.evaluations_per_s:.0f}/s, cpu {self.cpu_time_s * 1000:.0f} ms, "
            f"{self.processes} proc{'s' if self.processes != 1 else ''}, "
            f"cache {self.cache.describe()}{reuse})"
        )


class _EvalContext:
    """Everything a (worker) process needs to evaluate candidates.

    Holds one task-time source per cluster: the default BOE source is
    rebuilt for each distinct candidate cluster (its model is bound to a
    cluster), while an explicitly supplied source is pinned to the
    runner's cluster and cluster overrides are rejected.

    On top of the per-task cache inside the sources, the context memoises
    whole candidate outcomes by (workflow, cluster): coordinate descent
    re-checks every knob against the final assignment on its no-improvement
    pass, and grids often contain repeated points.  Workflows and clusters
    are frozen dataclasses hashing by value, so the key is taken at call
    time and a mutated workflow can never match a stale entry.
    """

    def __init__(
        self,
        cluster: Cluster,
        source: Optional[TaskTimeSource],
        variant: Variant,
        policy: str,
        enforce_vcores: bool,
        refine: bool,
        memo: bool = True,
        max_memo_entries: int = 65_536,
        metrics_enabled: bool = False,
        trace_enabled: bool = False,
        reuse: bool = True,
        batch: bool = True,
    ):
        # Carried to pool workers so their process-global registry is armed
        # before they build sources (counters bind at construction time).
        self.metrics_enabled = metrics_enabled
        # Likewise for the worker tracer: chunks record spans and ship
        # them home alongside the metrics delta when this is set.
        self.trace_enabled = trace_enabled
        self._cluster = cluster
        self._fixed_source = source
        self._variant = variant
        self._policy = policy
        self._enforce_vcores = enforce_vcores
        self._refine = refine
        self._batch = batch
        self._sources: Dict[Cluster, TaskTimeSource] = {}
        if source is not None:
            self._sources[cluster] = source
        self._memo: Optional[Dict[object, CandidateResult]] = {} if memo else None
        self._max_memo_entries = max_memo_entries
        self._memo_stats = CacheStats()
        # One trajectory cache per context: lookups filter on cluster and
        # source identity internally, so candidates with cluster overrides
        # coexist safely in the same store.
        self._trajectories: Optional[TrajectoryCache] = (
            TrajectoryCache() if reuse else None
        )

    @property
    def reuse_enabled(self) -> bool:
        return self._trajectories is not None

    def reuse_stats(self) -> ReuseStats:
        """The trajectory-reuse ledger (all zeros when reuse is disabled)."""
        if self._trajectories is None:
            return ReuseStats()
        return self._trajectories.stats

    def _estimator(self, cluster: Cluster) -> DagEstimator:
        return DagEstimator(
            cluster,
            self.source_for(cluster),
            variant=self._variant,
            policy=self._policy,
            enforce_vcores=self._enforce_vcores,
            trajectory_cache=self._trajectories,
            batch=self._batch,
        )

    def seed(self, workflow: Workflow, cluster: Optional[Cluster] = None) -> None:
        """Warm-start the trajectory cache with ``workflow``'s full run.

        Bypasses the candidate memo — a memo hit would skip the estimator
        and record nothing — so the trajectory is guaranteed resident
        afterwards (an already-cached trajectory is merely pinned as most
        recently used).  No-op when reuse is disabled; infeasible seeds are
        ignored (the candidates will report the error themselves).
        """
        if self._trajectories is None:
            return
        target = cluster if cluster is not None else self._cluster
        if self._trajectories.contains(workflow, target):
            return
        try:
            self._estimator(target).estimate(workflow)
        except EstimationError:
            pass

    def source_for(self, cluster: Cluster) -> TaskTimeSource:
        source = self._sources.get(cluster)
        if source is None:
            if self._fixed_source is not None:
                raise EstimationError(
                    "candidates with cluster overrides require the runner's "
                    "default BOE source (an explicit source is bound to one "
                    "cluster)"
                )
            source = BOESource(BOEModel(cluster, refine=self._refine))
            self._sources[cluster] = source
        return source

    def cache_stats(self) -> CacheStats:
        """Aggregate ledger: per-task caches of every source, plus the
        candidate-level memo (a memo hit stands for all the task-time
        lookups the skipped estimate would have made)."""
        total = CacheStats()
        for source in self._sources.values():
            stats = getattr(source, "cache_stats", None)
            if stats is not None:
                total.add(stats)
        total.add(self._memo_stats)
        return total

    def evaluate(
        self,
        index: int,
        label: str,
        workflow: Workflow,
        cluster: Optional[Cluster],
    ) -> CandidateResult:
        target = cluster if cluster is not None else self._cluster
        memo_key = None
        if self._memo is not None:
            memo_key = (workflow, target)
            hit = self._memo.get(memo_key)
            if hit is not None:
                self._memo_stats.hits += 1
                return replace(hit, index=index, label=label)
            self._memo_stats.misses += 1
        estimator = self._estimator(target)
        try:
            estimate = estimator.estimate(workflow)
        except EstimationError as exc:
            result = CandidateResult(
                index=index, label=label, total_time_s=None, error=str(exc)
            )
        else:
            result = CandidateResult(
                index=index,
                label=label,
                total_time_s=estimate.total_time,
                states=len(estimate.states),
                overhead_s=estimate.model_overhead_s,
            )
        if memo_key is not None:
            while len(self._memo) >= self._max_memo_entries:
                self._memo.pop(next(iter(self._memo)))
                self._memo_stats.evictions += 1
            self._memo[memo_key] = result
        return result


#: Per-worker evaluation context, installed by the pool initializer.
_WORKER_CONTEXT: Optional[_EvalContext] = None


def _worker_init(context: _EvalContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context
    # Wipe trace state inherited by fork: the worker may have been forked
    # from a thread that was mid-request (live request context) and
    # mid-span (open stack) — left in place, every worker span would be
    # stamped with, and parented under, work this process never did.
    clear_context()
    get_tracer().clear()
    if context.metrics_enabled:
        # Arm the worker's own registry before any source is built so
        # worker-side counters bind to it; deltas ship home per chunk.
        get_metrics().enable()
    if context.trace_enabled:
        get_tracer().enable()


_Item = Tuple[int, str, Workflow, Optional[Cluster]]

_MetricsDelta = Dict[str, Dict[str, Any]]

#: Picklable span rows (:meth:`repro.obs.tracer.Tracer.export_since`).
_SpanRows = List[Dict[str, Any]]


_ChunkOutcome = Tuple[
    List[CandidateResult], CacheStats, ReuseStats, float, _MetricsDelta, _SpanRows
]


def _evaluate_chunk(context: _EvalContext, payload: Sequence[_Item]) -> _ChunkOutcome:
    """Evaluate one chunk against ``context`` (worker-side).

    Returns (results, cache delta, reuse delta, cpu seconds, metrics
    delta, span rows); the metrics delta is empty unless the parent
    shipped ``metrics_enabled=True``, and the span rows — a ``sweep.chunk``
    span wrapping the per-candidate estimator spans — are empty unless
    ``trace_enabled`` rode along (the parent re-parents them via
    :meth:`~repro.obs.tracer.Tracer.ingest`).  Workers are
    single-threaded, so ``process_time`` is exactly the chunk's CPU share
    there.
    """
    registry = get_metrics()
    metrics_before = registry.snapshot() if context.metrics_enabled else {}
    tracer = get_tracer()
    if context.trace_enabled and not tracer.enabled:
        # Foreign pools (the shared service pool) may not have armed the
        # worker tracer at init; the context knows the parent wants spans.
        tracer.enable()
    capture = context.trace_enabled and tracer.enabled
    span_mark = tracer.span_count if capture else 0
    span = tracer.begin("sweep.chunk", candidates=len(payload)) if capture else None
    before = context.cache_stats().snapshot()
    reuse_before = context.reuse_stats().snapshot()
    cpu0 = time.process_time()
    results = [context.evaluate(*item) for item in payload]
    cpu_s = time.process_time() - cpu0
    tracer.finish(span)
    spans = tracer.export_since(span_mark) if capture else []
    metrics = (
        snapshot_delta(registry.snapshot(), metrics_before)
        if context.metrics_enabled
        else {}
    )
    return (
        results,
        context.cache_stats().delta(before),
        context.reuse_stats().delta(reuse_before),
        cpu_s,
        metrics,
        spans,
    )


def _worker_chunk(payload: Sequence[_Item]) -> _ChunkOutcome:
    """Chunk evaluator for the runner's *own* pool (fork-once context)."""
    context = _WORKER_CONTEXT
    assert context is not None, "worker used before initialisation"
    return _evaluate_chunk(context, payload)


def _context_chunk(payload: Tuple[Any, Sequence[_Item]]) -> _ChunkOutcome:
    """Self-contained chunk evaluator for *foreign* (shared) pools.

    The context ships inside the payload — either raw, or as a
    :class:`~repro.service.shm.ShmHandle` referencing a shared-memory
    segment the parent packed once for the whole job
    (:func:`~repro.service.shm.resolve_shared` memoises the deserialised
    context worker-side, so only a job's first chunk per worker pays the
    unpickle).  Either way a generic service pool — one whose workers were
    not initialised with this runner's context — can serve estimate
    chunks.
    """
    context, items = payload
    return _evaluate_chunk(resolve_shared(context), items)


class SweepRunner:
    """Shared batched-evaluation engine for what-if sweeps.

    One runner instance is meant to live for a whole sweep (a tuning run,
    a grid, a capacity plan): its task-time caches — and, when
    ``processes > 1``, its worker pool — persist across ``evaluate``
    calls, which is where the throughput comes from.

    Args:
        cluster: default target cluster.
        source: task-time source; ``None`` builds a memoised
            :class:`~repro.core.estimator.BOESource` per candidate cluster.
        variant: estimator variant (Alg1-Mean / Alg1-Mid / Alg2-Normal).
        policy: scheduler policy for the parallelism equilibrium.
        enforce_vcores: forwarded to :class:`~repro.core.estimator.DagEstimator`.
        refine: build refined BOE models (only with ``source=None``).
        memo: memoise whole candidate outcomes by (workflow, cluster);
            disable to reproduce the uncached serial reference path.
        reuse: memoise estimator *trajectories* and resume Algorithm 1
            from the longest reusable state prefix
            (:mod:`repro.core.incremental`); also orders each batch by
            knob-diff locality so neighbouring candidates share prefixes.
            ``None`` (default) follows ``memo``, so the uncached reference
            path stays fully cold.
        batch: evaluate each state's task-time queries through the batched
            BOE kernel (``distribution_batch``) when the source supports
            it.  ``None`` (default) follows ``memo``.
        prune: screen candidates with analytic makespan bounds
            (:mod:`repro.core.bounds`) before estimation: a candidate whose
            lower bound exceeds the incumbent's evaluated estimate (or,
            without an incumbent, the evaluated in-batch reference
            candidate's) is skipped — provably never the batch winner.
            Default off: an exact sweep evaluates every grid point.
            Per-call override via ``evaluate(..., prune=...)``.
        processes: worker processes; 1 (default) evaluates in-process.
        chunksize: candidates per pool task; ``None`` picks
            ``ceil(n / (4 * processes))``.
        pool: a *shared* :class:`~repro.service.pool.ResilientPool` to
            borrow instead of owning one (the service multiplexes every
            job over a single pool).  Chunks then ship their own context
            (:func:`_context_chunk`); the pool is never closed by this
            runner and ``processes`` follows the pool's size.
    """

    def __init__(
        self,
        cluster: Cluster,
        source: Optional[TaskTimeSource] = None,
        variant: Variant = Variant.MEAN,
        policy: str = "drf",
        enforce_vcores: bool = False,
        refine: bool = False,
        memo: bool = True,
        reuse: Optional[bool] = None,
        batch: Optional[bool] = None,
        prune: bool = False,
        processes: int = 1,
        chunksize: Optional[int] = None,
        pool: Optional[ResilientPool] = None,
    ):
        if processes < 1:
            raise EstimationError(f"processes must be >= 1: {processes}")
        if chunksize is not None and chunksize < 1:
            raise EstimationError(f"chunksize must be >= 1: {chunksize}")
        self._context = _EvalContext(
            cluster,
            source,
            variant,
            policy,
            enforce_vcores,
            refine,
            memo=memo,
            metrics_enabled=get_metrics().enabled,
            trace_enabled=get_tracer().enabled,
            reuse=memo if reuse is None else reuse,
            batch=memo if batch is None else batch,
        )
        if pool is not None:
            self._pool = pool
            self._own_pool = False
            self._processes = max(1, pool.processes)
        else:
            self._pool = ResilientPool(
                processes,
                initializer=_worker_init,
                initargs=(self._context,),
                label="sweep",
            )
            self._own_pool = True
            self._processes = processes
        self._chunksize = chunksize
        self._prune = prune
        # Borrowed-pool context transport: packed lazily on the first
        # parallel batch; ``False`` records a pack that declined (small
        # context / shm unavailable) so every later batch ships raw
        # without re-probing.
        self._shm_handle: Any = None
        self._pool_payload: Any = None
        # One BoundsModel per candidate cluster; ``None`` marks clusters
        # whose source cannot be bounded (stubs, scaled/caching wrappers).
        self._bounds_models: Dict[Cluster, Optional[BoundsModel]] = {}
        self._report = SweepReport(processes=self._processes)

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (no-op for serial or borrowed pools)
        and release the shared-memory context segment, if one was packed."""
        if self._own_pool:
            self._pool.close()
        if isinstance(self._shm_handle, ShmHandle):
            shm_release(self._shm_handle)
        self._shm_handle = None
        self._pool_payload = None

    def _shipped_context(self) -> Any:
        """What a borrowed-pool chunk payload carries as its context.

        The first call tries to park the context in shared memory
        (:func:`~repro.service.shm.pack`); success ships the tiny handle
        with every chunk, refusal ships the raw context exactly as before.
        The decision is made once per runner — the context is immutable.
        """
        if self._pool_payload is None:
            handle = shm_pack(self._context, label="sweep")
            self._shm_handle = handle if handle is not None else False
            self._pool_payload = handle if handle is not None else self._context
        return self._pool_payload

    @property
    def report(self) -> SweepReport:
        """Cumulative stats over every ``evaluate`` call so far."""
        return self._report

    def reset_report(self) -> None:
        self._report = SweepReport(processes=self._processes)

    def seed(self, workflow: Workflow, cluster: Optional[Cluster] = None) -> None:
        """Warm-start the trajectory cache with ``workflow`` (see
        :meth:`_EvalContext.seed`).  The seed lands in the in-process
        context; pool workers warm their own caches from the candidates
        they evaluate."""
        self._context.seed(workflow, cluster)

    # -- evaluation --------------------------------------------------------------

    @staticmethod
    def _checked(payload, cancel: Optional[CancelCheck]):
        """Pass ``payload`` through after polling the cancellation check."""
        check_cancel(cancel)
        return payload

    @staticmethod
    def _locality_key(item: _Item) -> Tuple[int, ...]:
        """Sort key grouping candidates by shared leading job specs.

        Workflows list jobs in definition order (roots first), so a
        lexicographic sort on the per-job value hashes places candidates
        that differ only in a *late* job next to each other — exactly the
        neighbourhoods whose trajectories share a long reusable prefix.
        Jobs and clusters are frozen dataclasses hashing by value.  The
        sort is stable, so ties keep submission order, and the ordering is
        a pure performance heuristic — estimates are order-independent, so
        results are unaffected either way.
        """
        _, _, workflow, cluster = item
        return (
            0 if cluster is None else hash(cluster),
            *(hash(job) for job in workflow.jobs),
        )

    def _bounds_for(self, cluster: Cluster) -> Optional[BoundsModel]:
        """The bounds model matching this cluster's task-time source.

        ``None`` — no pruning — when the source is not a plain
        :class:`~repro.core.estimator.BOESource` (stubs, measured profiles,
        scaled/caching wrappers): bounds derived from the BOE decomposition
        would not bracket what such a source estimates.
        """
        if cluster in self._bounds_models:
            return self._bounds_models[cluster]
        model: Optional[BoundsModel] = None
        try:
            source = self._context.source_for(cluster)
        except EstimationError:
            source = None
        if source is not None and type(source) is BOESource:
            try:
                model = BoundsModel.from_source(
                    source,
                    variant=self._context._variant,
                    policy=self._context._policy,
                    enforce_vcores=self._context._enforce_vcores,
                )
            except EstimationError:
                model = None
        self._bounds_models[cluster] = model
        return model

    def _prune_items(
        self,
        items: List[_Item],
        incumbent_time_s: Optional[float],
    ) -> Tuple[List[_Item], List[CandidateResult]]:
        """Split a batch into (surviving items, pruned results).

        Lower bounds are computed for every candidate with a boundable
        source (grouped per cluster, batched through
        :meth:`~repro.core.bounds.BoundsModel.bounds_batch`).  The prune
        threshold is always an *evaluated* estimate: the caller's
        incumbent, or — without one — the estimate of the in-batch
        candidate with the smallest lower bound, evaluated here first
        (reason ``"batch_ref"``).  Either way a candidate estimating below
        the threshold also lower-bounds below it, so the batch winner can
        never be pruned.
        """
        bounds: List[Optional["WorkflowBounds"]] = [None] * len(items)
        by_cluster: Dict[Optional[Cluster], List[int]] = {}
        registry = get_metrics()
        for position, item in enumerate(items):
            by_cluster.setdefault(item[3], []).append(position)
        for cluster_key, positions in by_cluster.items():
            target = cluster_key if cluster_key is not None else self._context._cluster
            model = self._bounds_for(target)
            if model is None:
                continue
            # Upper bounds (one solo BOE solve per stage) only matter for
            # the bracket-gap telemetry; the prune test itself is pure
            # lower bound vs evaluated threshold.
            batch = model.bounds_batch(
                [items[p][2] for p in positions],
                need_upper=registry.enabled,
            )
            for position, bracket in zip(positions, batch):
                bounds[position] = bracket
        if registry.enabled:
            gap = registry.histogram("sweep.bound_gap")
            for bracket in bounds:
                if bracket is not None:
                    gap.observe(bracket.relative_gap)
        threshold = incumbent_time_s
        reason = "incumbent"
        reference: Optional[CandidateResult] = None
        if threshold is None:
            bounded = [p for p, b in enumerate(bounds) if b is not None]
            if len(bounded) > 1:
                ref_pos = min(bounded, key=lambda p: bounds[p].lower_s)
                reference = self._context.evaluate(*items[ref_pos])
                if reference.ok:
                    threshold = reference.total_time_s
                    reason = "batch_ref"
                items = [it for p, it in enumerate(items) if p != ref_pos]
                bounds = [b for p, b in enumerate(bounds) if p != ref_pos]
        if threshold is None:
            kept = items
            pruned_results: List[CandidateResult] = []
        else:
            kept = []
            pruned_results = []
            pruned_ctr = (
                registry.labeled_counter("sweep.pruned", reason=reason)
                if registry.enabled
                else None
            )
            for item, bracket in zip(items, bounds):
                if bracket is not None and bracket.lower_s > threshold:
                    index, label, _, _ = item
                    pruned_results.append(
                        CandidateResult(
                            index=index,
                            label=label,
                            total_time_s=None,
                            pruned=True,
                            lower_bound_s=bracket.lower_s,
                            upper_bound_s=(
                                bracket.upper_s
                                if bracket.upper_s != float("inf")
                                else None
                            ),
                            prune_reason=reason,
                        )
                    )
                    if pruned_ctr is not None:
                        pruned_ctr.inc()
                else:
                    kept.append(item)
        if reference is not None:
            pruned_results.append(reference)
        return kept, pruned_results

    def evaluate(
        self,
        candidates: Sequence[Union[Candidate, Workflow]],
        cancel: Optional[CancelCheck] = None,
        *,
        prune: Optional[bool] = None,
        incumbent_time_s: Optional[float] = None,
    ) -> List[CandidateResult]:
        """Estimate every candidate; results in submission order.

        Infeasible candidates (estimation errors) are captured in their
        :class:`CandidateResult` rather than raised, so one broken grid
        point cannot abort a sweep.

        With pruning enabled (``prune=True`` here or on the runner), every
        candidate's analytic lower bound (:mod:`repro.core.bounds`) is
        compared against ``incumbent_time_s`` — the incumbent's evaluated
        estimate, its tightest upper bound — or, absent one, against the
        estimate of the batch's most promising candidate; candidates that
        provably cannot win come back with ``pruned=True`` instead of an
        estimate.  Pass ``prune=False`` for an exact sweep of every point.

        ``cancel`` is polled between candidates/chunks (see
        :data:`~repro.service.pool.CancelCheck`): a truthy return raises
        :class:`~repro.errors.JobCancelledError` and queued pool work is
        released; the check may instead raise its own typed error (the
        service's cooperative deadlines).
        """
        t0 = time.perf_counter()
        tracer = get_tracer()
        span = (
            tracer.begin("sweep.batch", candidates=len(candidates))
            if tracer.enabled
            else None
        )
        items: List[_Item] = []
        for index, entry in enumerate(candidates):
            if isinstance(entry, Workflow):
                entry = Candidate(workflow=entry)
            items.append((index, entry.name, entry.workflow, entry.cluster))
        do_prune = self._prune if prune is None else prune
        pruned_results: List[CandidateResult] = []
        prune_cpu = 0.0
        bounds_before = self._report.phase_s.get("bounds", 0.0)
        if do_prune and len(items) > 1:
            tb = time.perf_counter()
            cpu_b = parent_cpu_clock()
            items, pruned_results = self._prune_items(items, incumbent_time_s)
            prune_cpu = parent_cpu_clock() - cpu_b
            self._report._phase("bounds", time.perf_counter() - tb)
        if self._context.reuse_enabled and len(items) > 1:
            # Evaluate in locality order so neighbouring candidates hand
            # each other long trajectory prefixes; results are re-sorted
            # into submission order below, so callers never notice.
            items.sort(key=self._locality_key)
        report = self._report
        bounds_wall = report.phase_s.get("bounds", 0.0) - bounds_before
        report._phase("build", time.perf_counter() - t0 - bounds_wall)
        if not items and not pruned_results:
            tracer.finish(span, pooled=False)
            return []

        t1 = time.perf_counter()
        try:
            if not items:
                outcome = ([], CacheStats(), ReuseStats(), 0.0, False)
            elif self._processes > 1 and len(items) > 1:
                outcome = self._evaluate_parallel(items, cancel)
            else:
                outcome = None
            if outcome is None:
                outcome = self._evaluate_serial(items, cancel)
        except BaseException as exc:
            if span is not None:
                tracer.finish(span, error=type(exc).__name__)
            raise
        results, cache_delta, reuse_delta, cpu_s, pooled = outcome
        report._phase("estimate", time.perf_counter() - t1)

        t2 = time.perf_counter()
        results.extend(pruned_results)
        results.sort(key=lambda r: r.index)
        pruned_count = sum(1 for r in results if r.pruned)
        report.candidates += len(results)
        report.succeeded += sum(1 for r in results if r.ok)
        report.infeasible += sum(1 for r in results if r.error is not None)
        report.pruned += pruned_count
        for r in results:
            if r.pruned:
                report.pruned_reasons[r.prune_reason] = (
                    report.pruned_reasons.get(r.prune_reason, 0) + 1
                )
        report.batches += 1
        report.cpu_time_s += cpu_s + prune_cpu
        report.pool_used = report.pool_used or pooled
        report.cache.add(cache_delta)
        report.reuse.add(reuse_delta)
        report._phase("collect", time.perf_counter() - t2)
        report.wall_time_s += time.perf_counter() - t0
        if span is not None:
            tracer.finish(
                span,
                pooled=pooled,
                infeasible=sum(1 for r in results if r.error is not None),
                pruned=pruned_count,
            )
        logger.debug("sweep batch: %s", report.describe())
        return results

    # -- distributional evaluation ------------------------------------------------

    def simulate_candidates(
        self,
        candidates: Sequence[Union[Candidate, Workflow]],
        config=None,
        ensemble=None,
        cancel: Optional[CancelCheck] = None,
        *,
        prune: Optional[bool] = None,
        incumbent_time_s: Optional[float] = None,
    ) -> List[Optional["EnsembleResult"]]:
        """Evaluate candidates *distributionally*: a replication ensemble
        of the ground-truth simulator per candidate, instead of one BOE
        point estimate.

        Reuses the runner's worker pool (replication chunks ride the same
        executor as estimator chunks; worker metrics deltas come home
        through the obs ``merge()`` path) and the runner's report
        accounting.  Every candidate runs the full ``ensemble.replications``
        budget under the same ``base_seed`` — common random numbers across
        candidates, so the returned sample vectors are pairable
        (:func:`repro.ensemble.compare.paired_from_samples`); per-candidate
        early stopping would break that alignment and is left to
        :class:`repro.ensemble.EnsembleRunner`.

        Args:
            candidates: what-if scenarios (cluster overrides respected).
            config: base :class:`~repro.simulator.engine.SimulationConfig`
                whose seeds are re-derived per replication.
            ensemble: :class:`~repro.ensemble.EnsembleConfig`; its
                ``processes`` field is ignored in favour of the runner's.
            prune: screen candidates with analytic lower bounds before
                spending any replication budget; ``None`` follows the
                runner's ``prune`` setting.
            incumbent_time_s: the evaluated incumbent makespan the bound
                screen compares against; pruning a *distributional* batch
                requires it (there is no cheap in-batch reference, so
                without an incumbent nothing is pruned).  The analytic
                bound brackets the deterministic estimator, which the
                simulator validates in expectation — a pruned candidate is
                one the model proves worse than the incumbent, spending
                zero replications on it.

        Returns:
            One :class:`~repro.ensemble.EnsembleResult` per candidate, in
            submission order; a pruned candidate's slot is ``None``.
        """
        from repro.ensemble.engine import (
            EnsembleConfig,
            EnsembleResult,
            VariantSpec,
            _Accumulator,
            serial_replication_chunk,
            simulate_replication_chunk,
        )
        from repro.simulator.engine import SimulationConfig

        ens = ensemble if ensemble is not None else EnsembleConfig()
        config = config if config is not None else SimulationConfig()
        t0 = time.perf_counter()
        tracer = get_tracer()
        span = (
            tracer.begin(
                "sweep.simulate_batch",
                candidates=len(candidates),
                replications=ens.replications,
            )
            if tracer.enabled
            else None
        )
        registry = get_metrics()
        replication_ctr = (
            registry.counter("ensemble.replications") if registry.enabled else None
        )
        variants: List[Tuple[str, VariantSpec]] = []
        for entry in candidates:
            if isinstance(entry, Workflow):
                entry = Candidate(workflow=entry)
            cluster = (
                entry.cluster
                if entry.cluster is not None
                else self._context._cluster
            )
            variants.append(
                (entry.name, VariantSpec(entry.workflow, cluster, config))
            )
        accumulators = [
            _Accumulator(ens.tracked_quantiles(), replication_ctr)
            for _ in variants
        ]
        # Bound screen: an analytic lower bound above the incumbent's
        # evaluated makespan skips the candidate's whole replication
        # budget — the biggest single saving pruning can buy, since one
        # ensemble costs ``replications`` full simulations.
        pruned_out = [False] * len(variants)
        should_prune = self._prune if prune is None else prune
        if should_prune and incumbent_time_s is not None and variants:
            by_cluster: Dict[Cluster, List[int]] = {}
            for pos, (_, variant) in enumerate(variants):
                by_cluster.setdefault(variant.cluster, []).append(pos)
            pruned_ctr = (
                registry.labeled_counter("sweep.pruned", reason="incumbent")
                if registry.enabled
                else None
            )
            gap = registry.histogram("sweep.bound_gap") if registry.enabled else None
            for cluster, positions in by_cluster.items():
                model = self._bounds_for(cluster)
                if model is None:
                    continue
                batch = model.bounds_batch(
                    [variants[p][1].workflow for p in positions],
                    need_upper=registry.enabled,
                )
                for pos, bracket in zip(positions, batch):
                    if bracket is None:
                        continue
                    if gap is not None:
                        gap.observe(bracket.relative_gap)
                    if bracket.lower_s > incumbent_time_s:
                        pruned_out[pos] = True
                        if pruned_ctr is not None:
                            pruned_ctr.inc()
            skipped = sum(pruned_out)
            if skipped:
                self._report.pruned += skipped
                self._report.pruned_reasons["incumbent"] = (
                    self._report.pruned_reasons.get("incumbent", 0) + skipped
                )
        # One payload per (candidate, index chunk): the chunk function is
        # self-contained, so the estimator pool serves it as-is.
        chunksize = ens.chunksize or max(
            1, -(-ens.replications // (4 * max(1, self._processes)))
        )
        payloads = []
        for cand_idx, (_, variant) in enumerate(variants):
            if pruned_out[cand_idx]:
                continue
            for start in range(0, ens.replications, chunksize):
                indices = tuple(
                    range(start, min(start + chunksize, ens.replications))
                )
                payloads.append(
                    (cand_idx, (variant, ens.base_seed, indices, ens.exemplars))
                )

        # Parent CPU is accounted on the *thread* clock: with the shared
        # service pool several jobs drive this loop concurrently from
        # their own threads, and a process-wide clock would cross-attribute
        # job A's parent work to job B.  Worker chunks report their own CPU
        # (pooled chunks only — the serial fallback wrapper reports 0 since
        # its work already lands on this thread's clock).
        cpu0 = parent_cpu_clock()
        worker_cpu = 0.0
        pooled = (
            self._pool.executor() is not None
            if self._processes > 1 and len(payloads) > 1
            else False
        )
        if pooled:
            outcomes = self._pool.run_chunks(
                simulate_replication_chunk,
                [p for _, p in payloads],
                serial_fn=serial_replication_chunk,
                cancel=cancel,
            )
        else:
            outcomes = (
                serial_replication_chunk(self._checked(p, cancel))
                for _, p in payloads
            )
        for (cand_idx, _), (outputs, chunk_cpu, chunk_metrics, chunk_spans) in zip(
            payloads, outcomes
        ):
            for _, record, trace in outputs:
                accumulators[cand_idx].add(record, trace)
            worker_cpu += chunk_cpu
            if chunk_metrics:
                registry.merge(chunk_metrics)
            if chunk_spans:
                tracer.ingest(chunk_spans)
        cpu_s = (parent_cpu_clock() - cpu0) + worker_cpu
        wall_s = time.perf_counter() - t0

        results: List[Optional[EnsembleResult]] = []
        for cand_idx, ((label, _), acc) in enumerate(zip(variants, accumulators)):
            if pruned_out[cand_idx]:
                results.append(None)
                continue
            assert acc.settled()
            results.append(
                EnsembleResult(
                    workflow=label,
                    replications=acc.count,
                    max_replications=ens.replications,
                    early_stopped=False,
                    base_seed=ens.base_seed,
                    target_quantile=ens.target_quantile,
                    ci=acc.target_ci(ens.target_quantile, ens.ci_z),
                    quantiles=acc.quantiles(),
                    makespan=acc.makespan.snapshot(),
                    failed_attempts=acc.failed.snapshot(),
                    state_durations=tuple(s.snapshot() for s in acc.states),
                    samples=tuple(acc.samples),
                    exemplars=tuple(
                        acc.exemplars[i] for i in sorted(acc.exemplars)
                    ),
                    wall_time_s=wall_s,
                    cpu_time_s=cpu_s,
                    processes=self._processes,
                    pool_used=pooled,
                )
            )
        survived = sum(1 for r in results if r is not None)
        report = self._report
        report.candidates += len(results)
        report.succeeded += survived
        report.batches += 1
        report.cpu_time_s += cpu_s
        report.wall_time_s += wall_s
        report.pool_used = report.pool_used or pooled
        if span is not None:
            tracer.finish(span, pooled=pooled)
        logger.debug("distributional sweep batch: %s", report.describe())
        return results

    def compare_paired(
        self,
        baseline: Union[Candidate, Workflow],
        candidate: Union[Candidate, Workflow],
        config=None,
        ensemble=None,
    ) -> "PairedComparison":
        """Rank two configurations by the distribution of paired deltas.

        Both sides run under common random numbers through
        :meth:`simulate_candidates` (same pool, same base seed), and the
        aligned sample vectors become a
        :class:`~repro.ensemble.PairedComparison` — a delta CI that is
        tighter than comparing two independent point estimates ever could
        be.
        """
        from repro.ensemble.compare import paired_from_samples

        ens_a, ens_b = self.simulate_candidates(
            [baseline, candidate], config=config, ensemble=ensemble
        )
        return paired_from_samples(
            ens_a.workflow,
            ens_a.samples,
            ens_b.workflow,
            ens_b.samples,
            base_seed=ens_a.base_seed,
            wall_time_s=ens_a.wall_time_s,
            cpu_time_s=ens_a.cpu_time_s,
            processes=self._processes,
            pool_used=ens_a.pool_used,
        )

    def _evaluate_serial(
        self, items: Sequence[_Item], cancel: Optional[CancelCheck] = None
    ) -> Tuple[List[CandidateResult], CacheStats, ReuseStats, float, bool]:
        # In-process evaluation records into the parent's registry directly;
        # no snapshot/merge round-trip needed.  Parent CPU is thread time
        # (see :func:`repro.service.pool.parent_cpu_clock`) so concurrent
        # service jobs never cross-attribute each other's work.
        before = self._context.cache_stats().snapshot()
        reuse_before = self._context.reuse_stats().snapshot()
        cpu0 = parent_cpu_clock()
        results = []
        for item in items:
            check_cancel(cancel)
            results.append(self._context.evaluate(*item))
        cpu_s = parent_cpu_clock() - cpu0
        return (
            results,
            self._context.cache_stats().delta(before),
            self._context.reuse_stats().delta(reuse_before),
            cpu_s,
            False,
        )

    def _parent_chunk(self, items: Sequence[_Item]) -> _ChunkOutcome:
        """Serial-fallback chunk evaluation in the parent process.

        Used by :meth:`~repro.service.pool.ResilientPool.run_chunks` to
        finish a batch after a worker crash.  Reports **zero** CPU, an
        empty metrics delta, and no span rows: the work runs on the
        caller's thread, so the surrounding ``parent_cpu_clock`` delta
        already accounts it, the parent registry records counters
        directly, and the parent tracer records any spans directly —
        returning them again would double-count.
        """
        before = self._context.cache_stats().snapshot()
        reuse_before = self._context.reuse_stats().snapshot()
        results = [self._context.evaluate(*item) for item in items]
        return (
            results,
            self._context.cache_stats().delta(before),
            self._context.reuse_stats().delta(reuse_before),
            0.0,
            {},
            [],
        )

    def _evaluate_parallel(
        self, items: Sequence[_Item], cancel: Optional[CancelCheck] = None
    ) -> Optional[Tuple[List[CandidateResult], CacheStats, ReuseStats, float, bool]]:
        """Fan chunks out over the pool; ``None`` falls back to serial."""
        if self._pool.executor() is None:
            return None
        chunksize = self._chunksize or max(
            1, -(-len(items) // (4 * self._processes))
        )
        chunks = [
            items[i : i + chunksize] for i in range(0, len(items), chunksize)
        ]
        if self._own_pool:
            # Fork-once workers hold the context already.
            fn: Callable[[Any], _ChunkOutcome] = _worker_chunk
            payloads: List[Any] = list(chunks)
            serial_fn: Callable[[Any], _ChunkOutcome] = self._parent_chunk
        else:
            # Borrowed (service) pool: ship the context with every chunk —
            # as a shared-memory handle when the context is large enough to
            # park (packed once per runner), raw otherwise.
            fn = _context_chunk
            shipped = self._shipped_context()
            payloads = [(shipped, chunk) for chunk in chunks]
            serial_fn = lambda payload: self._parent_chunk(payload[1])  # noqa: E731
        cpu0 = parent_cpu_clock()
        results: List[CandidateResult] = []
        cache_delta = CacheStats()
        reuse_delta = ReuseStats()
        worker_cpu = 0.0
        registry = get_metrics()
        tracer = get_tracer()
        for (
            chunk_results,
            chunk_cache,
            chunk_reuse,
            chunk_cpu,
            chunk_metrics,
            chunk_spans,
        ) in self._pool.run_chunks(fn, payloads, serial_fn=serial_fn, cancel=cancel):
            results.extend(chunk_results)
            cache_delta.add(chunk_cache)
            reuse_delta.add(chunk_reuse)
            worker_cpu += chunk_cpu
            if chunk_metrics:
                # Fold worker activity into the parent registry; chunks merge
                # in submission order (run_chunks preserves it), keeping
                # gauge last-wins deterministic.
                registry.merge(chunk_metrics)
            if chunk_spans:
                # Re-anchor worker spans under the open ``sweep.batch`` span
                # (this runs on the batch's thread); inside the service the
                # active request context stamps its trace id too.
                tracer.ingest(chunk_spans)
        cpu_s = (parent_cpu_clock() - cpu0) + worker_cpu
        return results, cache_delta, reuse_delta, cpu_s, True


def default_processes(cap: int = 8) -> int:
    """A sensible pool size for CLI/benchmark use: the machine's cores,
    capped (estimator sweeps saturate quickly), and 1 on single-core boxes
    (where the pool is pure overhead)."""
    cores = os.cpu_count() or 1
    return max(1, min(cap, cores))
