"""Batched, cached, parallel what-if evaluation (see ``docs/sweeps.md``).

Shared by the tuner (:mod:`repro.tuning`), the experiment grids
(:mod:`repro.experiments`), the CLI and the examples: build
:class:`Candidate` scenarios, hand them to a :class:`SweepRunner`, read the
estimates back in order and the throughput/cache telemetry from the
:class:`SweepReport`.
"""

from repro.sweep.runner import (
    Candidate,
    CandidateResult,
    SweepReport,
    SweepRunner,
    default_processes,
)

__all__ = [
    "Candidate",
    "CandidateResult",
    "SweepReport",
    "SweepRunner",
    "default_processes",
]
