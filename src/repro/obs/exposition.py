"""Prometheus text exposition of a metrics snapshot — and its inverse.

:func:`to_prometheus` renders the plain-dict image produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` in the Prometheus text
format (version 0.0.4), so ``GET /metrics?format=prom`` can be scraped by
any standard collector.  The mapping:

* metric names: dots become underscores (``service.requests`` →
  ``service_requests``); labels ride from the snapshot image's
  ``"labels"`` key as ``{k="v"}`` pairs with value escaping.
* ``counter`` → ``counter``; ``gauge`` → ``gauge``.
* summary-moment histograms (count/sum/min/max) → a ``summary`` family
  with ``_count``/``_sum`` plus ``_min``/``_max`` gauges — the moments
  are what the registry keeps, so that is what is exposed.
* ``bucket_histogram`` → a real Prometheus ``histogram``: cumulative
  ``_bucket{le="..."}`` series ending in ``le="+Inf"``, ``_count``,
  ``_sum``.

:func:`parse_prometheus` is the matching validator: a small, strict
parser for the subset this module emits (CI uses it instead of an
external ``promtool``).  It checks comment/sample syntax, ``# TYPE``
consistency, histogram bucket monotonicity, and ``+Inf``/``_count``
agreement, and returns the samples grouped by family for assertions.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import split_labeled_name

__all__ = ["to_prometheus", "parse_prometheus", "PrometheusParseError"]


class PrometheusParseError(ValueError):
    """The exposition text violates the format :func:`to_prometheus` emits."""


def _sanitize_name(name: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize_name(k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value)) if not float(value).is_integer() else str(int(value))


def to_prometheus(snapshot: Mapping[str, Mapping[str, Any]]) -> str:
    """Render a registry snapshot in Prometheus text format.

    Series of one family (same base name, different labels) are grouped
    under a single ``# TYPE`` comment, as the format requires.  Output is
    sorted by family then flat key, so the text is deterministic for a
    given snapshot.
    """
    # family -> (prom type, [(flat key, image)])
    families: Dict[str, Tuple[str, List[Tuple[str, Mapping[str, Any]]]]] = {}
    for key in sorted(snapshot):
        image = snapshot[key]
        kind = image.get("type")
        if kind == "counter":
            prom_type = "counter"
        elif kind == "gauge":
            prom_type = "gauge"
        elif kind == "histogram":
            prom_type = "summary"
        elif kind == "bucket_histogram":
            prom_type = "histogram"
        else:
            continue
        family = _sanitize_name(split_labeled_name(key))
        entry = families.get(family)
        if entry is None:
            families[family] = (prom_type, [(key, image)])
        elif entry[0] == prom_type:
            entry[1].append((key, image))
        # a family with conflicting types keeps the first-seen type and
        # drops the stragglers — snapshot keys are sorted, so this is
        # deterministic, and the registry never produces the situation.

    lines: List[str] = []
    for family in sorted(families):
        prom_type, series = families[family]
        lines.append(f"# TYPE {family} {prom_type}")
        for _key, image in series:
            labels = dict(image.get("labels") or {})
            kind = image["type"]
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{family}{_format_labels(labels)} "
                    f"{_format_value(float(image['value']))}"
                )
            elif kind == "histogram":
                base = _format_labels(labels)
                count = int(image["count"])
                lines.append(f"{family}_count{base} {count}")
                lines.append(
                    f"{family}_sum{base} {_format_value(float(image['sum']))}"
                )
                if count:
                    lines.append(
                        f"{family}_min{base} "
                        f"{_format_value(float(image['min']))}"
                    )
                    lines.append(
                        f"{family}_max{base} "
                        f"{_format_value(float(image['max']))}"
                    )
            elif kind == "bucket_histogram":
                cumulative = 0
                for bound, n in zip(image["bounds"], image["counts"]):
                    cumulative += int(n)
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(float(bound))
                    lines.append(
                        f"{family}_bucket{_format_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                total = int(image["count"])
                lines.append(
                    f"{family}_bucket{_format_labels(inf_labels)} {total}"
                )
                lines.append(f"{family}_count{_format_labels(labels)} {total}")
                lines.append(
                    f"{family}_sum{_format_labels(labels)} "
                    f"{_format_value(float(image['sum']))}"
                )
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)
_TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<type>counter|gauge|histogram|summary|untyped)\s*$"
)


def _parse_value(text: str, line_no: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise PrometheusParseError(f"line {line_no}: bad sample value {text!r}")


def _parse_labels(text: str, line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(text):
        m = _LABEL_RE.match(text, pos)
        if not m:
            raise PrometheusParseError(
                f"line {line_no}: bad label syntax in {{{text}}}"
            )
        raw = m.group("value")
        labels[m.group("key")] = (
            raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        pos = m.end()
    return labels


def parse_prometheus(text: str) -> Dict[str, List[Dict[str, Any]]]:
    """Parse and validate Prometheus exposition text.

    Returns ``{family: [{"name", "labels", "value"}, ...]}`` keyed by the
    declared ``# TYPE`` family names, with the suffixed samples
    (``_bucket``/``_count``/``_sum``/``_min``/``_max``) attached to their
    family.  Raises :class:`PrometheusParseError` on malformed lines,
    samples without a preceding type declaration, non-monotonic histogram
    buckets, or a missing/mismatched ``+Inf`` bucket.
    """
    families: Dict[str, List[Dict[str, Any]]] = {}
    types: Dict[str, str] = {}
    current: Optional[str] = None
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE"):
                m = _TYPE_RE.match(line)
                if not m:
                    raise PrometheusParseError(
                        f"line {line_no}: malformed TYPE comment: {line!r}"
                    )
                name = m.group("name")
                if name in types:
                    raise PrometheusParseError(
                        f"line {line_no}: duplicate TYPE for {name}"
                    )
                types[name] = m.group("type")
                families[name] = []
                current = name
            continue  # HELP and other comments are permitted, uninterpreted
        m = _SAMPLE_RE.match(line)
        if not m:
            raise PrometheusParseError(f"line {line_no}: malformed sample: {line!r}")
        name = m.group("name")
        family = name
        for suffix in ("_bucket", "_count", "_sum", "_min", "_max"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        if family not in types:
            raise PrometheusParseError(
                f"line {line_no}: sample {name!r} has no preceding # TYPE"
            )
        if family != current:
            raise PrometheusParseError(
                f"line {line_no}: sample {name!r} outside its family block"
            )
        labels = _parse_labels(m.group("labels") or "", line_no)
        families[family].append(
            {
                "name": name,
                "labels": labels,
                "value": _parse_value(m.group("value"), line_no),
            }
        )

    for family, samples in families.items():
        if types[family] != "histogram":
            continue
        # group bucket series by their non-`le` labels and check shape
        groups: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
        for s in samples:
            key = tuple(
                sorted((k, v) for k, v in s["labels"].items() if k != "le")
            )
            if s["name"] == f"{family}_bucket":
                le = s["labels"].get("le")
                if le is None:
                    raise PrometheusParseError(
                        f"{family}: bucket sample without le label"
                    )
                groups.setdefault(key, []).append(
                    (_parse_value(le, 0), s["value"])
                )
            elif s["name"] == f"{family}_count":
                counts[key] = s["value"]
        for key, buckets in groups.items():
            ordered = sorted(buckets, key=lambda bv: bv[0])
            values = [v for _le, v in ordered]
            if any(b > a for a, b in zip(values[1:], values)):
                raise PrometheusParseError(
                    f"{family}: non-monotonic cumulative buckets for {dict(key)}"
                )
            if not ordered or ordered[-1][0] != math.inf:
                raise PrometheusParseError(
                    f"{family}: missing +Inf bucket for {dict(key)}"
                )
            expected = counts.get(key)
            if expected is not None and ordered[-1][1] != expected:
                raise PrometheusParseError(
                    f"{family}: +Inf bucket {ordered[-1][1]} != "
                    f"_count {expected} for {dict(key)}"
                )
    return families
