"""Chrome trace-event / Perfetto JSON export of simulation runs.

A :class:`~repro.simulator.trace.SimulationResult` already contains a full
cluster timeline — when every task attempt ran, on which node, through which
sub-stages, and which workflow state was in effect — but until now the only
way to look at it was ASCII.  This module renders it in the `trace-event
format <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``ui.perfetto.dev`` and ``chrome://tracing``:

* one *process* (track group) per cluster node, one *thread* (lane) per
  concurrently running container slot — tasks are packed greedily into
  lanes so overlapping attempts never share a lane;
* every task attempt is a complete-event slice; its sub-stages are nested
  slices contained within it;
* workflow states are slices on a dedicated ``workflow`` track (the Fig. 5
  timeline, directly navigable);
* failed attempts are flagged: instant events mark each failure, and the
  surviving attempt's slice carries ``attempt``/``retried`` args;
* a ``running_tasks`` counter track shows cluster occupancy over time;
* spans recorded by the process-global tracer (model wall/CPU time) join
  as one extra process, so "where did the *simulated* time go" and "where
  did the *model's own* time go" live in one file.

Simulated seconds map to trace microseconds 1:1 (1 s -> 1e6 ticks), so the
Perfetto ruler reads in simulated seconds directly.
"""

from __future__ import annotations

import heapq
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.mapreduce.stage import StageKind
from repro.obs.tracer import Tracer, get_tracer
from repro.simulator.trace import SimulationResult, TaskTrace

__all__ = [
    "simulation_events",
    "to_chrome_trace",
    "trace_flame",
    "write_trace",
    "validate_trace_events",
]

#: pid of the workflow-level track (states, failures, counters).
WORKFLOW_PID = 1
#: pid of the first cluster node; node ``i`` gets ``NODE_PID_BASE + i``.
NODE_PID_BASE = 10
#: pid of the tracer-span process.
TRACER_PID = 2


def _sec_to_us(t: float) -> float:
    return t * 1e6


def _task_id(task: TaskTrace) -> str:
    prefix = "m" if task.kind is StageKind.MAP else "r"
    return f"{task.job}/{prefix}{task.index}"


def _assign_lanes(tasks: Sequence[TaskTrace]) -> Dict[Tuple[str, StageKind, int], int]:
    """Greedy interval packing: overlapping tasks get distinct lanes."""
    lanes: Dict[Tuple[str, StageKind, int], int] = {}
    # (t_end, lane) heap of busy lanes; reuse the lowest-numbered free lane.
    busy: List[Tuple[float, int]] = []
    free: List[int] = []
    next_lane = 0
    eps = 1e-12
    for task in sorted(tasks, key=lambda t: (t.t_start, t.job, t.index)):
        while busy and busy[0][0] <= task.t_start + eps:
            _, lane = heapq.heappop(busy)
            heapq.heappush(free, lane)
        if free:
            lane = heapq.heappop(free)
        else:
            lane = next_lane
            next_lane += 1
        lanes[(task.job, task.kind, task.index)] = lane
        heapq.heappush(busy, (task.t_end, lane))
    return lanes


def simulation_events(result: SimulationResult) -> List[dict]:
    """Render one simulation trace as a list of Chrome trace events."""
    events: List[dict] = []

    # Attempt bookkeeping: how many attempts each task id consumed.  The
    # trace records failures as (task_id, attempt, t_fail); the surviving
    # attempt in ``tasks`` is therefore attempt ``max + 1``.
    failures_of: Dict[str, List[Tuple[int, float]]] = {}
    for task_id, attempt, t_fail in result.failed_attempts:
        failures_of.setdefault(task_id, []).append((attempt, t_fail))

    # -- workflow track: states, failures, occupancy counter -------------------
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": WORKFLOW_PID,
            "tid": 0,
            "args": {"name": f"workflow {result.workflow_name}"},
        }
    )
    events.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": WORKFLOW_PID,
            "tid": 0,
            "args": {"name": "states"},
        }
    )
    for state in result.states:
        running = sorted(f"{job}/{kind.value}" for job, kind in state.running)
        events.append(
            {
                "name": f"S{state.index} " + "+".join(running),
                "cat": "state",
                "ph": "X",
                "ts": _sec_to_us(state.t_start),
                "dur": _sec_to_us(state.duration),
                "pid": WORKFLOW_PID,
                "tid": 0,
                "args": {"state": state.index, "running": running},
            }
        )
    if result.failed_attempts:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": WORKFLOW_PID,
                "tid": 1,
                "args": {"name": "failures"},
            }
        )
        for task_id, attempt, t_fail in result.failed_attempts:
            events.append(
                {
                    "name": f"fail {task_id}#{attempt}",
                    "cat": "failure",
                    "ph": "i",
                    "ts": _sec_to_us(t_fail),
                    "pid": WORKFLOW_PID,
                    "tid": 1,
                    "s": "p",
                    "args": {"task": task_id, "attempt": attempt},
                }
            )
    # Occupancy counter, sampled at every task boundary.
    edges: List[Tuple[float, int]] = []
    for task in result.tasks:
        edges.append((task.t_start, 1))
        edges.append((task.t_end, -1))
    running_now = 0
    for t, delta in sorted(edges):
        running_now += delta
        events.append(
            {
                "name": "running_tasks",
                "cat": "occupancy",
                "ph": "C",
                "ts": _sec_to_us(t),
                "pid": WORKFLOW_PID,
                "tid": 0,
                "args": {"tasks": running_now},
            }
        )

    # -- node tracks: task attempts with nested sub-stages ---------------------
    by_node: Dict[int, List[TaskTrace]] = {}
    for task in result.tasks:
        by_node.setdefault(task.node, []).append(task)
    for node in sorted(by_node):
        pid = NODE_PID_BASE + node
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"node {node}"},
            }
        )
        lanes = _assign_lanes(by_node[node])
        for task in by_node[node]:
            tid = lanes[(task.job, task.kind, task.index)]
            task_id = _task_id(task)
            fails = failures_of.get(task_id, ())
            attempt = max((a for a, _ in fails), default=0) + 1
            args: Dict[str, Any] = {
                "task": task_id,
                "input_mb": round(task.input_mb, 3),
                "t_ready": task.t_ready,
                "attempt": attempt,
            }
            if fails:
                args["retried"] = True
                args["failed_attempts"] = len(fails)
            events.append(
                {
                    "name": task_id,
                    "cat": "task" if not fails else "task,retried",
                    "ph": "X",
                    "ts": _sec_to_us(task.t_start),
                    "dur": _sec_to_us(task.duration),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            for sub in task.substages:
                events.append(
                    {
                        "name": sub.name,
                        "cat": "substage",
                        "ph": "X",
                        "ts": _sec_to_us(sub.t_start),
                        "dur": _sec_to_us(sub.duration),
                        "pid": pid,
                        "tid": tid,
                        "args": {"task": task_id},
                    }
                )
    return events


def to_chrome_trace(
    result: SimulationResult,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Mapping[str, Mapping[str, Any]]] = None,
    attribution: Optional[Sequence[Mapping[str, Any]]] = None,
) -> dict:
    """Assemble the full trace document (JSON-object trace-event format).

    Args:
        result: the simulation run to render.
        tracer: include this tracer's finished spans as an extra process
            (defaults to the process-global tracer when it recorded any).
        metrics: a metrics snapshot embedded under ``otherData.metrics``.
        attribution: bottleneck-attribution rows embedded under
            ``otherData.bottleneck_attribution``
            (see :mod:`repro.obs.attribution`).
    """
    events = simulation_events(result)
    if tracer is None:
        tracer = get_tracer()
    if tracer.span_count:
        events.extend(tracer.to_events(pid=TRACER_PID))
    other: Dict[str, Any] = {
        "workflow": result.workflow_name,
        "makespan_s": result.makespan,
        "tasks": len(result.tasks),
        "states": len(result.states),
        "failed_attempts": len(result.failed_attempts),
    }
    if metrics is not None:
        other["metrics"] = dict(metrics)
    if attribution is not None:
        other["bottleneck_attribution"] = list(attribution)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def trace_flame(trace_id: str, tracer: Optional[Tracer] = None) -> Optional[dict]:
    """The flame of one request: every span tagged with ``trace_id``.

    With request tracing active (:mod:`repro.obs.context`), a single HTTP
    request leaves spans on the handler thread, the scheduler's job
    thread, and — ingested — inside pool workers, all stamped with the
    request's trace id.  This assembles them into a standalone Chrome
    trace document: one process, one lane per originating thread (worker
    chunks keep their synthetic ingest lanes, named ``worker chunk N``),
    timestamps relative to the earliest span so the ruler starts at 0.

    Returns ``None`` when no span carries ``trace_id`` (unknown or
    evicted trace — the service maps this to 404).
    """
    if tracer is None:
        tracer = get_tracer()
    spans = [s for s in tracer.spans_for_trace(trace_id) if s.t_end is not None]
    if not spans:
        return None
    epoch = min(s.t_start for s in spans)
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACER_PID,
            "tid": 0,
            "args": {"name": f"request {trace_id}"},
        }
    ]
    # Real threads first (handler, job workers) in first-seen order, then
    # ingested worker-chunk lanes (negative synthetic ids, newest last).
    real = sorted(
        {s.thread_id for s in spans if s.thread_id >= 0},
        key=lambda t: min(s.t_start for s in spans if s.thread_id == t),
    )
    ingested = sorted(
        (t for t in {s.thread_id for s in spans} if t < 0), reverse=True
    )
    tid_of: Dict[int, int] = {}
    for idx, thread in enumerate(real):
        tid_of[thread] = idx
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACER_PID,
                "tid": idx,
                "args": {"name": "handler" if idx == 0 else f"job thread {idx}"},
            }
        )
    for n, thread in enumerate(ingested):
        tid = len(real) + n
        tid_of[thread] = tid
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACER_PID,
                "tid": tid,
                "args": {"name": f"worker chunk {n}"},
            }
        )
    for span in sorted(spans, key=lambda s: (tid_of[s.thread_id], s.t_start)):
        args: Dict[str, Any] = {
            k: v if isinstance(v, (bool, int, float, str)) or v is None else str(v)
            for k, v in span.attrs.items()
        }
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["cpu_ms"] = round(span.cpu_s * 1e3, 6)
        events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": _sec_to_us(span.t_start - epoch),
                "dur": _sec_to_us(span.wall_s),
                "pid": TRACER_PID,
                "tid": tid_of[span.thread_id],
                "args": args,
            }
        )
    duration = max(s.t_end for s in spans) - epoch
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": trace_id,
            "spans": len(spans),
            "duration_s": duration,
        },
    }


def write_trace(path: str, payload: dict) -> None:
    """Write a trace document produced by :func:`to_chrome_trace`."""
    problems = validate_trace_events(payload)
    if problems:
        raise ValueError(f"refusing to write an invalid trace: {problems[:3]}")
    with open(path, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))


#: Required keys per event phase, beyond the universal ``ph``/``pid``/``tid``.
_PHASE_KEYS = {
    "X": ("name", "ts", "dur"),
    "i": ("name", "ts"),
    "C": ("name", "ts", "args"),
    "M": ("name", "args"),
}


def validate_trace_events(payload: Any) -> List[str]:
    """Structural validation against the trace-event format.

    Returns a list of problems (empty = valid).  Used by the CI smoke test
    and by :func:`write_trace`; intentionally strict about the subset this
    exporter emits rather than the whole, looser, Chrome spec.
    """
    problems: List[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload must be an object with a 'traceEvents' array"]
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["'traceEvents' must be a non-empty array"]
    for i, event in enumerate(events):
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
        where = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASE_KEYS:
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        for key in _PHASE_KEYS[ph]:
            if key not in event:
                problems.append(f"{where}: phase {ph!r} requires {key!r}")
        for key in ("ts", "dur"):
            if key in event:
                value = event[key]
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where}: {key} must be a number >= 0")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems
