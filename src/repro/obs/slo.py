"""Sliding-window SLO tracking: recent per-endpoint latency and errors.

The bucket histograms in :mod:`repro.obs.metrics` answer "what has this
process seen since it started" at bucket resolution; an operator watching
``repro-dag top`` wants "how is the service doing *right now*" with exact
percentiles.  :class:`SloTracker` keeps the raw ``(t, latency, error)``
samples of the last ``window_s`` seconds per endpoint in a deque, prunes
lazily on record and snapshot, and computes exact order-statistic
quantiles from the sorted window — affordable because the window is
small by construction (a bounded ``max_samples`` guards against bursts).

The tracker is service-side state, not a registry instrument: it is
windowed and non-mergeable, so it deliberately lives outside the
snapshot/delta/merge pipeline.  ``GET /status`` serves its snapshot.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Tuple

__all__ = ["SloTracker"]

_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def _exact_quantile(ordered: list, q: float) -> float:
    """Nearest-rank-with-interpolation quantile of a pre-sorted list."""
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class SloTracker:
    """Per-endpoint sliding-window latency/error statistics.

    Args:
        window_s: horizon in seconds; samples older than this fall out.
        max_samples: per-endpoint cap so a request burst cannot grow the
            window without bound (oldest samples drop first, which only
            ever *shortens* the effective horizon).
        clock: injectable monotonic clock (tests pin it).
    """

    def __init__(
        self,
        window_s: float = 60.0,
        max_samples: int = 4096,
        clock=time.monotonic,
    ):
        self.window_s = float(window_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._max_samples = int(max_samples)
        # endpoint -> deque of (t, latency_s, is_error)
        self._samples: Dict[str, Deque[Tuple[float, float, bool]]] = {}

    def record(self, endpoint: str, latency_s: float, error: bool = False) -> None:
        now = self._clock()
        with self._lock:
            window = self._samples.get(endpoint)
            if window is None:
                window = self._samples[endpoint] = deque(maxlen=self._max_samples)
            window.append((now, float(latency_s), bool(error)))
            self._prune(window, now)

    def _prune(self, window: Deque[Tuple[float, float, bool]], now: float) -> None:
        horizon = now - self.window_s
        while window and window[0][0] < horizon:
            window.popleft()

    def snapshot(self) -> Dict[str, Any]:
        """Exact window statistics per endpoint.

        Returns ``{"window_s": ..., "endpoints": {endpoint: {count,
        errors, error_rate, p50, p95, p99, max, mean}}}`` with latencies
        in seconds.  Endpoints whose window emptied are omitted.
        """
        now = self._clock()
        out: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            for endpoint in sorted(self._samples):
                window = self._samples[endpoint]
                self._prune(window, now)
                if not window:
                    continue
                latencies = sorted(sample[1] for sample in window)
                errors = sum(1 for sample in window if sample[2])
                count = len(window)
                out[endpoint] = {
                    "count": count,
                    "errors": errors,
                    "error_rate": errors / count,
                    "mean": sum(latencies) / count,
                    "max": latencies[-1],
                    **{
                        name: _exact_quantile(latencies, q)
                        for name, q in _QUANTILES
                    },
                }
        return {"window_s": self.window_s, "endpoints": out}

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
