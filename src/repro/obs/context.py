"""Request context: the trace identity that follows one request everywhere.

The service mints a ``trace_id`` per HTTP request; everything that happens
on behalf of that request — the handler, the scheduler's job thread, the
spans shipped home from pool workers — must end up tagged with it, or the
"one request, one flame" promise of ``GET /trace/<id>`` breaks.  This
module is the carrier:

* :class:`RequestContext` — an immutable ``(trace_id, span_id)`` pair held
  in a :class:`contextvars.ContextVar`.  ``span_id`` names the request's
  root span so spans opened on *other* threads (the scheduler's job
  workers activate the context explicitly) re-parent under it.
* The tracer consults :func:`current_context` through a provider hook
  (:func:`repro.obs.tracer.set_context_provider`, installed at import):
  every span begun while a context is active gets a ``trace_id`` attribute
  and, at the top of a thread's stack, the request span as its parent.
  The hook lives entirely on the *enabled* path — a disabled tracer never
  reads the context, so the PR 3 no-op discipline holds.
* :class:`TraceContextFilter` — a :mod:`logging` filter injecting
  ``record.trace_id`` so log lines correlate with traces
  (:func:`repro.obs.logsetup.configure_logging` installs it).

Worker processes never see the context object: pool chunks return their
spans trace-id-less and the parent stamps the active ``trace_id`` at
ingest time (:meth:`repro.obs.tracer.Tracer.ingest` runs on the job
thread, where the contextvar is live).  That keeps work items free of
request state — the same chunk bytes serve any request.
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.obs import tracer as _tracer_module

__all__ = [
    "RequestContext",
    "TraceContextFilter",
    "activate",
    "clear_context",
    "current_context",
    "current_trace_id",
    "deactivate",
    "new_trace_id",
    "request_context",
]


@dataclass(frozen=True)
class RequestContext:
    """One request's trace identity.

    Attributes:
        trace_id: opaque hex string naming the request end to end.
        span_id: the request's root span in the *serving* process's
            tracer; spans opened at the top of another thread's stack
            while this context is active parent to it.  ``None`` until
            the root span exists (or when tracing is disabled).
    """

    trace_id: str
    span_id: Optional[int] = None


_CURRENT: "ContextVar[Optional[RequestContext]]" = ContextVar(
    "repro_request_context", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return os.urandom(8).hex()


def current_context() -> Optional[RequestContext]:
    """The active request context on this thread/task, or ``None``."""
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    """The active trace id, or ``None`` outside any request."""
    ctx = _CURRENT.get()
    return ctx.trace_id if ctx is not None else None


def activate(ctx: Optional[RequestContext]):
    """Install ``ctx`` as the active context; returns the reset token."""
    return _CURRENT.set(ctx)


def deactivate(token) -> None:
    """Undo a matching :func:`activate`."""
    _CURRENT.reset(token)


def clear_context() -> None:
    """Unconditionally drop any active context on this thread.

    Pool-worker initializers call this: on POSIX the executor *forks* its
    workers from whichever thread first feeds the pool, and if that thread
    was serving a request, the child's main thread inherits the activated
    contextvar — every worker span would then be stamped with a request it
    never served.  Workers must start context-free; the parent stamps the
    right trace id at ingest time.
    """
    _CURRENT.set(None)


@contextmanager
def request_context(
    trace_id: Optional[str] = None, span_id: Optional[int] = None
) -> Iterator[RequestContext]:
    """Scope a request context lexically (tests, embedding apps)."""
    ctx = RequestContext(trace_id if trace_id else new_trace_id(), span_id)
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


class TraceContextFilter(logging.Filter):
    """Injects ``record.trace_id`` into every log record.

    Outside a request the field is ``"-"``, so a format containing
    ``%(trace_id)s`` is always safe.  Attach to a *handler* (not a
    logger) so records from every ``repro.*`` child logger pass through.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        ctx = _CURRENT.get()
        record.trace_id = ctx.trace_id if ctx is not None else "-"
        return True


# The tracer stamps spans with the active trace id through this hook; it
# is consulted only on the enabled path (begin() bails first when off).
_tracer_module.set_context_provider(current_context)
