"""Per-state bottleneck attribution — the paper's ``p_X`` table, surfaced.

BOE already decides, for every sub-stage, which resource is the bottleneck
and at what fraction ``p_X = t_X / t_sigma`` each non-bottleneck resource
idles (§III, Eq. 3-5 and the Fig. 4 walk-through).  The simulator already
knows, for every workflow state, which stages ran and at what observed
parallelism.  Neither surfaces the join: *which resource bounds each state,
and by how much*.  This module computes that join:

1. For every :class:`~repro.simulator.trace.StateTrace` in a simulation
   result, measure each running stage's observed parallelism inside the
   state window (time-averaged task overlap — the empirical ``Delta_i``).
2. Re-ask :class:`~repro.core.boe.BOEModel` for each stage's task estimate
   under exactly that competition, keeping the per-resource utilisations of
   the dominant sub-stage (the ``p_X`` vector).
3. Join with the observed median task time in the state
   (:func:`repro.simulator.metrics.median_task_time_in_state`) so the model
   verdict sits next to the measurement it explains.

The state's overall bottleneck is the bottleneck of its *pacing* stage —
the running stage with the longest estimated task time, i.e. the one whose
progress gates the state transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import render_table
from repro.cluster.cluster import Cluster
from repro.cluster.resources import PREEMPTABLE_RESOURCES, Resource
from repro.core.boe import BOEModel
from repro.dag.workflow import Workflow
from repro.mapreduce.stage import StageKind
from repro.simulator.metrics import median_task_time_in_state
from repro.simulator.trace import SimulationResult, StateTrace

__all__ = [
    "StageAttribution",
    "StateAttribution",
    "AttributionReport",
    "attribute_bottlenecks",
]


@dataclass(frozen=True)
class StageAttribution:
    """One running stage's bottleneck verdict inside one workflow state.

    Attributes:
        job: job name.
        kind: MAP or REDUCE.
        observed_delta: time-averaged number of this stage's tasks in flight
            during the state window (the empirical ``Delta_i``).
        dominant_substage: name of the sub-stage that dominates the task
            timeline under this state's competition.
        bottleneck: the dominant sub-stage's bottleneck resource.
        utilisation: ``p_X`` per preemptable resource for the dominant
            sub-stage (1.0 for the bottleneck, < 1 for overlapped resources,
            0.0 for resources the sub-stage does not touch).
        model_task_s: BOE's full-task time estimate under this competition.
        observed_task_s: median observed task work-time attributed to the
            state (None when no task ran mostly inside the window).
    """

    job: str
    kind: StageKind
    observed_delta: float
    dominant_substage: str
    bottleneck: Resource
    utilisation: Dict[Resource, float]
    model_task_s: float
    observed_task_s: Optional[float]

    @property
    def stage_label(self) -> str:
        return f"{self.job}/{self.kind.value}"

    def to_row(self) -> Dict:
        return {
            "job": self.job,
            "kind": self.kind.value,
            "observed_delta": self.observed_delta,
            "dominant_substage": self.dominant_substage,
            "bottleneck": self.bottleneck.value,
            "utilisation": {r.value: p for r, p in self.utilisation.items()},
            "model_task_s": self.model_task_s,
            "observed_task_s": self.observed_task_s,
        }


@dataclass(frozen=True)
class StateAttribution:
    """The bottleneck verdict for one workflow state.

    Attributes:
        index: state index (Algorithm 1 / Fig. 5 numbering).
        t_start, t_end: state window in simulated seconds.
        stages: one :class:`StageAttribution` per running stage.
        bottleneck: the pacing stage's bottleneck — the resource that bounds
            this state.
        utilisation: the pacing stage's ``p_X`` vector.
    """

    index: int
    t_start: float
    t_end: float
    stages: Tuple[StageAttribution, ...]
    bottleneck: Resource
    utilisation: Dict[Resource, float]

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_row(self) -> Dict:
        return {
            "state": self.index,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "bottleneck": self.bottleneck.value,
            "utilisation": {r.value: p for r, p in self.utilisation.items()},
            "stages": [s.to_row() for s in self.stages],
        }


@dataclass(frozen=True)
class AttributionReport:
    """Bottleneck attribution for every state of one simulated run."""

    workflow_name: str
    states: Tuple[StateAttribution, ...]

    def to_rows(self) -> List[Dict]:
        """JSON-safe rows (embedded in trace files under ``otherData``)."""
        return [s.to_row() for s in self.states]

    def render(self) -> str:
        """The ``p_X`` table: one line per (state, running stage)."""
        headers = [
            "state",
            "window [s]",
            "stage",
            "Δ_obs",
            "substage",
            "bottleneck",
            *[f"p_{r.value}" for r in PREEMPTABLE_RESOURCES],
            "t_model [s]",
            "t_obs [s]",
        ]
        rows: List[List] = []
        for state in self.states:
            window = f"{state.t_start:.1f}-{state.t_end:.1f}"
            for i, stage in enumerate(state.stages):
                pacing = stage.bottleneck is state.bottleneck and (
                    stage.utilisation == state.utilisation
                )
                rows.append(
                    [
                        state.index if i == 0 else None,
                        window if i == 0 else None,
                        stage.stage_label + (" *" if pacing else ""),
                        round(stage.observed_delta, 1),
                        stage.dominant_substage,
                        stage.bottleneck.value,
                        *[
                            stage.utilisation.get(r, 0.0)
                            for r in PREEMPTABLE_RESOURCES
                        ],
                        stage.model_task_s,
                        stage.observed_task_s,
                    ]
                )
        table = render_table(
            headers,
            rows,
            title=f"bottleneck attribution — {self.workflow_name}"
            " (* = pacing stage; p_X = 1 marks the bottleneck)",
            precision=2,
        )
        return table


def _observed_delta(
    result: SimulationResult, state: StateTrace, job: str, kind: StageKind
) -> float:
    """Time-averaged number of the stage's tasks in flight in the window."""
    if state.duration <= 0:
        return 0.0
    overlap = 0.0
    for task in result.tasks_of(job, kind):
        lo = max(task.t_start, state.t_start)
        hi = min(task.t_end, state.t_end)
        if hi > lo:
            overlap += hi - lo
    return overlap / state.duration


def _substage_utilisation(estimate) -> Dict[Resource, float]:
    """Per-resource ``p_X`` of one sub-stage estimate.

    Several operations on one resource serialise and share the resource's
    aggregate utilisation (BOE computes it that way), so max == the value.
    """
    util: Dict[Resource, float] = {}
    for op in estimate.ops:
        current = util.get(op.resource, 0.0)
        if op.utilisation > current:
            util[op.resource] = op.utilisation
    return util


def attribute_bottlenecks(
    workflow: Workflow,
    cluster: Cluster,
    result: SimulationResult,
    model: Optional[BOEModel] = None,
    refine: bool = False,
) -> AttributionReport:
    """Build the per-state bottleneck attribution report.

    Args:
        workflow: the workflow that was simulated (supplies job specs).
        cluster: the cluster it ran on.
        result: the simulation trace to attribute.
        model: reuse an existing BOE model (and its cache); by default a
            fresh one is built with the given ``refine`` setting.
        refine: partial-usage refinement for the default model
            (see :class:`~repro.core.boe.BOEModel`).
    """
    if model is None:
        model = BOEModel(cluster, refine=refine)
    job_map = workflow.job_map
    state_rows: List[StateAttribution] = []
    for state in result.states:
        running = sorted(state.running, key=lambda jk: (jk[0], jk[1].value))
        deltas = {
            (job, kind): _observed_delta(result, state, job, kind)
            for job, kind in running
        }
        stage_rows: List[StageAttribution] = []
        for job, kind in running:
            delta = max(1.0, deltas[(job, kind)])
            concurrent = [
                (job_map[oj], ok, max(1.0, deltas[(oj, ok)]))
                for oj, ok in running
                if (oj, ok) != (job, kind)
            ]
            estimate = model.task_time(job_map[job], kind, delta, concurrent)
            dominant = max(estimate.substages, key=lambda s: s.duration)
            stage_rows.append(
                StageAttribution(
                    job=job,
                    kind=kind,
                    observed_delta=deltas[(job, kind)],
                    dominant_substage=dominant.name,
                    bottleneck=dominant.bottleneck,
                    utilisation=_substage_utilisation(dominant),
                    model_task_s=estimate.duration,
                    observed_task_s=median_task_time_in_state(
                        result, state, job, kind
                    ),
                )
            )
        if not stage_rows:
            continue
        pacing = max(stage_rows, key=lambda s: s.model_task_s)
        state_rows.append(
            StateAttribution(
                index=state.index,
                t_start=state.t_start,
                t_end=state.t_end,
                stages=tuple(stage_rows),
                bottleneck=pacing.bottleneck,
                utilisation=dict(pacing.utilisation),
            )
        )
    return AttributionReport(
        workflow_name=result.workflow_name, states=tuple(state_rows)
    )
