"""Span tracing for the model/simulator hot paths.

The repo's ROADMAP wants the engine "as fast as the hardware allows"; you
cannot optimise hot paths you cannot measure.  This module provides the
measurement primitive: a *span* is a named, nested, wall+CPU-timed interval
with structured attributes, recorded by a process-global :class:`Tracer`.

Design constraints (enforced by ``benchmarks/bench_obs_overhead.py``):

* **True no-op when disabled.**  ``Tracer.span()`` on a disabled tracer
  returns a shared singleton whose ``__enter__``/``__exit__`` do nothing and
  allocate nothing; ``Tracer.begin()`` returns ``None``.  Instrumented code
  on hot paths caches ``tracer if tracer.enabled else None`` once and guards
  every hook with ``if tracer is not None`` — the disabled cost is a single
  predicated branch.
* **Never perturbs results.**  Spans only *read* timestamps; no simulation
  or estimation arithmetic may depend on them, so instrumented and
  uninstrumented runs are bit-identical.

Enabling: ``REPRO_TRACE=1`` in the environment (read at import), the CLI's
``repro-dag trace`` subcommand, or :func:`enable_tracing` /
:meth:`Tracer.enable` programmatically.

Usage::

    from repro.obs import trace_span

    with trace_span("sweep.batch", candidates=64) as span:
        ...
        span.set(pooled=True)
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "trace_span",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "set_context_provider",
    "env_truthy",
]

#: Installed by :mod:`repro.obs.context`; returns the active request
#: context (an object with ``trace_id``/``span_id``) or ``None``.  Held at
#: module level rather than per-tracer so tests swapping tracers keep the
#: hook.  Consulted only on the *enabled* path — ``begin()`` returns before
#: reading it when the tracer is off.
_CONTEXT_PROVIDER: Optional[Callable[[], Any]] = None


def set_context_provider(provider: Optional[Callable[[], Any]]) -> None:
    """Install the request-context hook (see :mod:`repro.obs.context`)."""
    global _CONTEXT_PROVIDER
    _CONTEXT_PROVIDER = provider


def env_truthy(name: str) -> bool:
    """Is the environment variable set to a truthy value (``1``/``true``...)?"""
    value = os.environ.get(name, "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


class Span:
    """One finished-or-open traced interval.

    Attributes:
        name: span name (dotted, e.g. ``"sim.state"``).
        span_id: unique id within the tracer.
        parent_id: enclosing span's id on the same thread (None at top level).
        depth: nesting depth on its thread (0 at top level).
        thread_id: ``threading.get_ident()`` of the opening thread.
        t_start, t_end: wall-clock bounds (``time.perf_counter`` seconds);
            ``t_end`` is ``None`` while the span is open.
        cpu_start, cpu_end: process CPU clock bounds (``time.process_time``).
        attrs: structured attributes, set at open time and via :meth:`set`.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "thread_id",
        "t_start",
        "t_end",
        "cpu_start",
        "cpu_end",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        thread_id: int,
        attrs: Dict[str, Any],
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.thread_id = thread_id
        self.t_start = time.perf_counter()
        self.t_end: Optional[float] = None
        self.cpu_start = time.process_time()
        self.cpu_end: Optional[float] = None
        self.attrs = attrs

    # -- context-manager protocol (the ``with trace_span(...)`` form) ---------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self.attrs.pop("__tracer__", None)
        if tracer is not None:
            if exc_type is not None:
                self.attrs["error"] = exc_type.__name__
            tracer.finish(self)
        return False

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) structured attributes; chainable."""
        self.attrs.update(attrs)
        return self

    # -- derived ---------------------------------------------------------------

    @property
    def wall_s(self) -> float:
        """Wall-clock duration in seconds (0 while still open)."""
        return (self.t_end - self.t_start) if self.t_end is not None else 0.0

    @property
    def cpu_s(self) -> float:
        """Process-CPU duration in seconds (0 while still open)."""
        return (self.cpu_end - self.cpu_start) if self.cpu_end is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = f"{self.wall_s * 1e3:.3f} ms" if self.t_end is not None else "open"
        return f"Span({self.name!r}, {state}, depth={self.depth})"


class _NullSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Process-global span recorder.

    Spans nest per thread (a thread-local stack supplies parent/depth).
    Finished spans are kept in memory up to ``max_spans``; further spans are
    counted in :attr:`dropped` but not stored, so a runaway loop cannot
    exhaust memory.

    Args:
        enabled: record spans; a disabled tracer is a true no-op.
        max_spans: retention bound for finished spans.
    """

    def __init__(self, enabled: bool = False, max_spans: int = 1_000_000):
        self._enabled = bool(enabled)
        self._max_spans = max_spans
        self._spans: List[Span] = []
        self._dropped = 0
        self._next_id = 1
        # Synthetic thread ids for ingested (worker-shipped) spans: one
        # fresh negative lane per ingest call, so worker chunks never
        # collide with real threads (or each other) in Perfetto tracks.
        self._next_ingest_tid = -1
        self._lock = threading.Lock()
        self._local = threading.local()
        #: perf_counter origin used by exporters for relative timestamps.
        self.epoch = time.perf_counter()
        self.cpu_epoch = time.process_time()

    # -- state -----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @property
    def dropped(self) -> int:
        """Spans discarded after the retention bound filled up."""
        return self._dropped

    # -- recording -------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name: str, **attrs: Any) -> Optional[Span]:
        """Open a span for explicit (non-lexical) lifetimes.

        Returns ``None`` when disabled; pair with :meth:`finish`, which
        accepts ``None`` so callers need no extra guard.
        """
        if not self._enabled:
            return None
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name,
            span_id,
            parent.span_id if parent is not None else None,
            len(stack),
            threading.get_ident(),
            attrs,
        )
        if _CONTEXT_PROVIDER is not None:
            ctx = _CONTEXT_PROVIDER()
            if ctx is not None:
                # Tag every span opened inside a request with its trace id,
                # and parent thread-root spans to the request's root span —
                # the scheduler's job threads start with an empty stack, so
                # without this their spans would float free of the request.
                attrs.setdefault("trace_id", ctx.trace_id)
                if parent is None and ctx.span_id is not None:
                    span.parent_id = ctx.span_id
        stack.append(span)
        return span

    def finish(self, span: Optional[Span], **attrs: Any) -> None:
        """Close a span opened with :meth:`begin` (``None`` is a no-op)."""
        if span is None:
            return
        if attrs:
            span.attrs.update(attrs)
        span.t_end = time.perf_counter()
        span.cpu_end = time.process_time()
        stack = self._stack()
        if span in stack:  # tolerate out-of-order finishes
            stack.remove(span)
        with self._lock:
            if len(self._spans) < self._max_spans:
                self._spans.append(span)
            else:
                self._dropped += 1

    def span(self, name: str, **attrs: Any):
        """Open a span as a context manager (the primary API)."""
        if not self._enabled:
            return _NULL_SPAN
        span = self.begin(name, **attrs)
        assert span is not None
        span.attrs["__tracer__"] = self
        return span

    # -- inspection ------------------------------------------------------------

    def snapshot(self) -> List[Span]:
        """The finished spans recorded so far (a copy)."""
        with self._lock:
            return list(self._spans)

    @property
    def span_count(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0
        # Also forget per-thread open-span stacks.  A forked pool worker
        # inherits the submitting thread's stack (possibly mid-span), and
        # without this reset its own spans would parent to phantom ids.
        # Threads still mid-span in *this* process are unaffected: finish()
        # holds the span object directly and tolerates a missing stack
        # entry.
        self._local = threading.local()

    # -- cross-process span shipping -------------------------------------------

    def export_since(self, mark: int) -> List[dict]:
        """Finished spans recorded after ``mark`` as picklable rows.

        ``mark`` is a prior :attr:`span_count` (0 ships everything).  Wall
        timestamps are converted to *absolute unix seconds* so a parent
        process with a different ``perf_counter`` origin can re-anchor them
        (:meth:`ingest`); CPU time ships as the scalar duration.  Pool
        chunk evaluators use this to return their spans alongside the
        metrics delta.
        """
        with self._lock:
            spans = self._spans[mark:]
            # perf_counter -> unix offset of *this* process, taken under the
            # lock so every row in one export shares the same anchor.
            offset = time.time() - time.perf_counter()
            rows: List[dict] = []
            for s in spans:
                if s.t_end is None:  # pragma: no cover - open spans not stored
                    continue
                rows.append(
                    {
                        "name": s.name,
                        "span_id": s.span_id,
                        "parent_id": s.parent_id,
                        "depth": s.depth,
                        "t_start": s.t_start + offset,
                        "t_end": s.t_end + offset,
                        "cpu_s": s.cpu_s,
                        "attrs": {
                            k: v
                            for k, v in s.attrs.items()
                            if not k.startswith("__")
                        },
                    }
                )
        return rows

    def ingest(
        self,
        rows: List[dict],
        parent_id: Optional[int] = None,
        trace_id: Optional[str] = None,
    ) -> int:
        """Adopt spans exported by another process (:meth:`export_since`).

        Span ids are remapped to fresh ids in this tracer (intra-batch
        parent links are preserved); rows whose parent is *outside* the
        batch — a worker's top-level spans — re-parent under ``parent_id``,
        defaulting to the innermost open span on the calling thread (the
        runners ingest inside their batch span, so worker chunks nest
        under it).  ``trace_id`` defaults to the active request context's,
        stamping every ingested span into the current request's flame.
        Timestamps are re-anchored to this process's ``perf_counter``
        frame; recreated spans carry their CPU duration but a zero CPU
        origin.  Returns the number of spans adopted (0 when disabled).
        """
        if not self._enabled or not rows:
            return 0
        if trace_id is None and _CONTEXT_PROVIDER is not None:
            ctx = _CONTEXT_PROVIDER()
            if ctx is not None:
                trace_id = ctx.trace_id
        if parent_id is None:
            stack = self._stack()
            if stack:
                parent_id = stack[-1].span_id
        with self._lock:
            offset = time.time() - time.perf_counter()
            lane = self._next_ingest_tid
            self._next_ingest_tid -= 1
            id_map: Dict[int, int] = {}
            for row in rows:
                id_map[row["span_id"]] = self._next_id
                self._next_id += 1
            adopted = 0
            for row in rows:
                attrs = dict(row.get("attrs") or {})
                attrs["ingested"] = True
                if trace_id is not None:
                    # Overwrite, don't setdefault: the ingesting side owns
                    # trace identity.  A worker row may carry a trace_id it
                    # inherited by forking mid-request — stale by
                    # definition, since workers never serve requests.
                    attrs["trace_id"] = trace_id
                row_parent = row.get("parent_id")
                span = Span(
                    row["name"],
                    id_map[row["span_id"]],
                    id_map.get(row_parent, parent_id),
                    int(row.get("depth", 0)),
                    lane,
                    attrs,
                )
                span.t_start = float(row["t_start"]) - offset
                span.t_end = float(row["t_end"]) - offset
                span.cpu_start = 0.0
                span.cpu_end = float(row.get("cpu_s", 0.0))
                if len(self._spans) < self._max_spans:
                    self._spans.append(span)
                    adopted += 1
                else:
                    self._dropped += 1
        return adopted

    def spans_for_trace(self, trace_id: str) -> List[Span]:
        """Finished spans whose ``trace_id`` attribute matches (a copy)."""
        with self._lock:
            return [
                s for s in self._spans if s.attrs.get("trace_id") == trace_id
            ]

    def to_events(self, pid: int = 0, process_name: str = "repro model") -> List[dict]:
        """Finished spans as Chrome trace-event ``X`` slices.

        Timestamps are microseconds relative to the tracer's epoch; each
        OS thread becomes one track.  Open spans are skipped.
        """
        spans = self.snapshot()
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        tids = sorted({s.thread_id for s in spans})
        tid_of = {thread: idx for idx, thread in enumerate(tids)}
        for span in spans:
            if span.t_end is None:
                continue
            args = {
                k: v if isinstance(v, (bool, int, float, str)) or v is None else str(v)
                for k, v in span.attrs.items()
            }
            args["cpu_ms"] = round(span.cpu_s * 1e3, 6)
            events.append(
                {
                    "name": span.name,
                    "cat": "span",
                    "ph": "X",
                    "ts": (span.t_start - self.epoch) * 1e6,
                    "dur": span.wall_s * 1e6,
                    "pid": pid,
                    "tid": tid_of[span.thread_id],
                    "args": args,
                }
            )
        return events


#: The process-global tracer; ``REPRO_TRACE=1`` arms it at import time.
_GLOBAL_TRACER = Tracer(enabled=env_truthy("REPRO_TRACE"))


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-global tracer (tests, workers); returns the old one."""
    global _GLOBAL_TRACER
    old, _GLOBAL_TRACER = _GLOBAL_TRACER, tracer
    return old


def enable_tracing() -> Tracer:
    """Arm the global tracer and return it."""
    _GLOBAL_TRACER.enable()
    return _GLOBAL_TRACER


def disable_tracing() -> None:
    _GLOBAL_TRACER.disable()


def trace_span(name: str, **attrs: Any):
    """Open a span on the process-global tracer (no-op singleton when off)."""
    return _GLOBAL_TRACER.span(name, **attrs)
