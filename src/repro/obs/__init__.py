"""Observability: span tracing, metrics, trace export, bottleneck attribution.

The package's models *explain* where time goes inside a simulated cluster;
this sub-package explains where time goes inside the models themselves and
renders both onto inspectable surfaces:

* :mod:`repro.obs.tracer` — nested wall+CPU spans (``trace_span``), a true
  no-op when disabled; armed by ``REPRO_TRACE=1`` or the CLI.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with
  ``snapshot``/``merge`` so pool workers ship their numbers home.
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON rendering of
  a :class:`~repro.simulator.trace.SimulationResult` (and tracer spans).
* :mod:`repro.obs.attribution` — the per-state ``p_X`` bottleneck table
  joining BOE utilisations with observed state occupancy.
* :mod:`repro.obs.context` — the per-request ``trace_id`` carrier
  (contextvar + logging filter) the service threads through every span.
* :mod:`repro.obs.exposition` — Prometheus text rendering of a metrics
  snapshot, plus the strict parser CI uses to validate it.
* :mod:`repro.obs.slo` — sliding-window per-endpoint latency/error
  statistics behind ``GET /status`` and ``repro-dag top``.
* :mod:`repro.obs.logsetup` — stdlib ``logging`` wiring for the package.

The tracer/metrics/logging primitives import eagerly (they are leaves the
instrumented hot paths depend on); the export and attribution layers load
lazily via module ``__getattr__`` because they import the very model modules
(:mod:`repro.core.boe`, :mod:`repro.simulator`) that are themselves
instrumented — an eager import here would be circular.

See ``docs/observability.md`` for the guided tour.
"""

from repro.obs.context import (
    RequestContext,
    TraceContextFilter,
    current_context,
    current_trace_id,
    new_trace_id,
    request_context,
)
from repro.obs.exposition import parse_prometheus, to_prometheus
from repro.obs.logsetup import configure_logging, package_logger
from repro.obs.metrics import (
    BucketHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    labeled_name,
    render_snapshot,
    set_metrics,
    snapshot_delta,
)
from repro.obs.slo import SloTracker
from repro.obs.tracer import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    env_truthy,
    get_tracer,
    set_tracer,
    trace_span,
)

_LAZY = {
    "AttributionReport": "repro.obs.attribution",
    "StageAttribution": "repro.obs.attribution",
    "StateAttribution": "repro.obs.attribution",
    "attribute_bottlenecks": "repro.obs.attribution",
    "simulation_events": "repro.obs.export",
    "to_chrome_trace": "repro.obs.export",
    "trace_flame": "repro.obs.export",
    "validate_trace_events": "repro.obs.export",
    "write_trace": "repro.obs.export",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "AttributionReport",
    "StageAttribution",
    "StateAttribution",
    "attribute_bottlenecks",
    "simulation_events",
    "to_chrome_trace",
    "trace_flame",
    "validate_trace_events",
    "write_trace",
    "configure_logging",
    "package_logger",
    "RequestContext",
    "TraceContextFilter",
    "current_context",
    "current_trace_id",
    "new_trace_id",
    "request_context",
    "parse_prometheus",
    "to_prometheus",
    "SloTracker",
    "BucketHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "labeled_name",
    "render_snapshot",
    "set_metrics",
    "snapshot_delta",
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "env_truthy",
    "get_tracer",
    "set_tracer",
    "trace_span",
]
