"""Logging wiring for the ``repro`` package.

Every module gets its logger via ``logging.getLogger(__name__)``, all of
which hang under the ``"repro"`` root logger.  The package itself attaches
only a :class:`logging.NullHandler` (library etiquette — importing ``repro``
never configures logging for the embedding application); the CLI calls
:func:`configure_logging` when the user passes ``--log-level``.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

__all__ = ["configure_logging", "package_logger"]

#: Name of the package root logger every ``repro.*`` module logger rolls up to.
ROOT_LOGGER = "repro"

#: ``trace_id`` is injected by :class:`repro.obs.context.TraceContextFilter`
#: (attached to the handler below), so the field is always present: the
#: active request's id inside a request, ``-`` outside one.
_FORMAT = "%(asctime)s %(levelname)-7s [%(trace_id)s] %(name)s: %(message)s"


def package_logger() -> logging.Logger:
    """The ``repro`` root logger (NullHandler-backed until configured)."""
    return logging.getLogger(ROOT_LOGGER)


def configure_logging(
    level: Union[int, str],
    stream=None,
    fmt: Optional[str] = None,
) -> logging.Logger:
    """Attach a stream handler to the package root logger.

    Idempotent: a handler previously installed by this function is replaced,
    not duplicated, so repeated CLI invocations in one process (tests) don't
    multiply output lines.

    Args:
        level: a :mod:`logging` level name ("debug", "INFO", ...) or number.
        stream: destination (default ``sys.stderr`` — stdout carries results).
        fmt: log-record format override.
    """
    if isinstance(level, str):
        numeric = logging.getLevelName(level.strip().upper())
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level: {level!r}")
        level = numeric
    # Imported here, not at module top: context imports tracer, and this
    # module must stay a leaf the rest of repro.obs can import freely.
    from repro.obs.context import TraceContextFilter

    logger = package_logger()
    logger.setLevel(level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(fmt or _FORMAT))
    handler.addFilter(TraceContextFilter())
    handler.set_name("repro-cli")
    for existing in list(logger.handlers):
        if existing.get_name() == handler.get_name():
            logger.removeHandler(existing)
    logger.addHandler(handler)
    return logger
