"""Process-wide metrics registry: counters, gauges, histograms.

Instrumented code (the simulator engine, the BOE model's cache, the sweep
runner, the tuner) records *what happened how often* here; spans
(:mod:`repro.obs.tracer`) record *where the time went*.  The registry is
designed around two constraints:

* **Near-zero cost when disabled.**  Hot paths resolve their instruments
  once at construction time and only touch them behind an
  ``if registry.enabled`` captured flag, so a disabled run performs no
  metric work at all (``benchmarks/bench_obs_overhead.py`` enforces this).
* **Mergeable across processes.**  :meth:`MetricsRegistry.snapshot`
  produces a plain-dict, picklable image; :func:`snapshot_delta` subtracts
  a "before" image; :meth:`MetricsRegistry.merge` folds a delta back in.
  :class:`~repro.sweep.SweepRunner` uses exactly this trio to ship worker
  metrics back to the parent with deterministic results.

Metric names are dotted, lowercase, and stable — they are part of the
observable API (see ``docs/observability.md`` for the catalogue).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.tracer import env_truthy

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "snapshot_delta",
    "render_snapshot",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value-wins float (e.g. a cache's current size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A streaming summary (count/sum/min/max) of observed values.

    Full bucketed histograms are overkill for the package's needs; the
    four summary moments merge exactly across processes, which bucket
    boundaries would complicate for no current consumer.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named instruments, created lazily on first use.

    The ``enabled`` flag is advisory: the registry always works, but
    instrumented code consults the flag at construction time and skips all
    metric work when it is off.  Enable the registry *before* building the
    objects you want instrumented (the CLI does this in ``main``).
    """

    def __init__(self, enabled: bool = False):
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- state -----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- instruments -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A plain-dict, picklable image of every instrument."""
        with self._lock:
            out: Dict[str, Dict[str, Any]] = {}
            for name, c in self._counters.items():
                out[name] = c.snapshot()
            for name, g in self._gauges.items():
                out[name] = g.snapshot()
            for name, h in self._histograms.items():
                out[name] = h.snapshot()
            return out

    def merge(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a snapshot (typically a worker's delta) into this registry.

        Counters and histograms accumulate; gauges take the incoming value
        (last-wins — callers merge worker snapshots in deterministic order).
        """
        for name, image in snapshot.items():
            kind = image.get("type")
            if kind == "counter":
                self.counter(name).inc(int(image["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(image["value"]))
            elif kind == "histogram":
                h = self.histogram(name)
                count = int(image["count"])
                if count:
                    h.count += count
                    h.total += float(image["sum"])
                    lo, hi = image.get("min"), image.get("max")
                    if lo is not None and lo < h.min:
                        h.min = float(lo)
                    if hi is not None and hi > h.max:
                        h.max = float(hi)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def snapshot_delta(
    after: Mapping[str, Mapping[str, Any]],
    before: Mapping[str, Mapping[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """The activity between two snapshots of the same registry.

    Counters and histogram count/sum subtract; gauges and histogram
    min/max keep the ``after`` value (they are not differential).
    """
    out: Dict[str, Dict[str, Any]] = {}
    for name, image in after.items():
        prior = before.get(name)
        kind = image.get("type")
        if prior is None:
            out[name] = dict(image)
            continue
        if kind == "counter":
            value = int(image["value"]) - int(prior["value"])
            if value:
                out[name] = {"type": "counter", "value": value}
        elif kind == "gauge":
            out[name] = dict(image)
        elif kind == "histogram":
            count = int(image["count"]) - int(prior["count"])
            if count:
                out[name] = {
                    "type": "histogram",
                    "count": count,
                    "sum": float(image["sum"]) - float(prior["sum"]),
                    "min": image.get("min"),
                    "max": image.get("max"),
                }
    return out


def render_snapshot(snapshot: Mapping[str, Mapping[str, Any]]) -> str:
    """Human-readable, sorted rendering for ``--metrics`` CLI output."""
    if not snapshot:
        return "(no metrics recorded)"
    lines: List[str] = []
    width = max(len(name) for name in snapshot)
    for name in sorted(snapshot):
        image = snapshot[name]
        kind = image.get("type")
        if kind == "counter":
            body = f"{image['value']}"
        elif kind == "gauge":
            body = f"{image['value']:g}"
        else:
            count = image.get("count", 0)
            if count:
                mean = float(image["sum"]) / count
                body = (
                    f"n={count} mean={mean:g} "
                    f"min={image['min']:g} max={image['max']:g}"
                )
            else:
                body = "n=0"
        lines.append(f"{name.ljust(width)}  {body}")
    return "\n".join(lines)


#: The process-global registry; ``REPRO_METRICS=1`` (or ``REPRO_TRACE=1`` —
#: a trace without its counters is half a story) arms it at import time.
_GLOBAL_METRICS = MetricsRegistry(
    enabled=env_truthy("REPRO_METRICS") or env_truthy("REPRO_TRACE")
)


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL_METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the old one."""
    global _GLOBAL_METRICS
    old, _GLOBAL_METRICS = _GLOBAL_METRICS, registry
    return old
