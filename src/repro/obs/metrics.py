"""Process-wide metrics registry: counters, gauges, histograms.

Instrumented code (the simulator engine, the BOE model's cache, the sweep
runner, the tuner) records *what happened how often* here; spans
(:mod:`repro.obs.tracer`) record *where the time went*.  The registry is
designed around two constraints:

* **Near-zero cost when disabled.**  Hot paths resolve their instruments
  once at construction time and only touch them behind an
  ``if registry.enabled`` captured flag, so a disabled run performs no
  metric work at all (``benchmarks/bench_obs_overhead.py`` enforces this).
* **Mergeable across processes.**  :meth:`MetricsRegistry.snapshot`
  produces a plain-dict, picklable image; :func:`snapshot_delta` subtracts
  a "before" image; :meth:`MetricsRegistry.merge` folds a delta back in.
  :class:`~repro.sweep.SweepRunner` uses exactly this trio to ship worker
  metrics back to the parent with deterministic results.

Metric names are dotted, lowercase, and stable — they are part of the
observable API (see ``docs/observability.md`` for the catalogue).
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.tracer import env_truthy

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "BucketHistogram",
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "labeled_name",
    "split_labeled_name",
    "snapshot_delta",
    "render_snapshot",
]

#: Default upper bounds (seconds) for request-latency bucket histograms;
#: a final +inf bucket is implicit.  Chosen for a service whose fast path
#: is sub-millisecond cache hits and whose slow path is multi-second jobs.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0,
)


def labeled_name(name: str, labels: Mapping[str, str]) -> str:
    """Flat registry key of one labeled series: ``name{k=v,...}``.

    Label keys are sorted, so the same label set always produces the same
    key regardless of call-site ordering.  The labels themselves also ride
    in the snapshot image (under ``"labels"``), so consumers (the
    Prometheus renderer, ``/status``) never need to parse this back.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_labeled_name(key: str) -> str:
    """The family (base) name of a flat registry key."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value-wins float (e.g. a cache's current size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A streaming summary (count/sum/min/max) of observed values.

    Full bucketed histograms are overkill for the package's needs; the
    four summary moments merge exactly across processes, which bucket
    boundaries would complicate for no current consumer.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class BucketHistogram:
    """A fixed-bucket histogram (Prometheus-style cumulative ``le`` view).

    ``bounds`` are strictly increasing finite upper bounds; a final +inf
    bucket is implicit, so ``counts`` has ``len(bounds) + 1`` cells.
    Bucket counts merge exactly across processes (element-wise add) as
    long as both sides share the same bounds — :meth:`MetricsRegistry.merge`
    enforces that.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ) or not all(math.isfinite(b) for b in bounds):
            raise ValueError(
                f"bucket bounds must be strictly increasing and finite: {bounds}"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate: the upper bound of the
        bucket where the cumulative count crosses ``q`` (the overflow
        bucket reports the largest finite bound).  Coarse by design —
        exact percentiles come from the SLO window's raw samples
        (:mod:`repro.obs.slo`); this is the merged-forever view."""
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= target:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]  # pragma: no cover - cumulative covers count

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "bucket_histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Named instruments, created lazily on first use.

    The ``enabled`` flag is advisory: the registry always works, but
    instrumented code consults the flag at construction time and skips all
    metric work when it is off.  Enable the registry *before* building the
    objects you want instrumented (the CLI does this in ``main``).
    """

    def __init__(self, enabled: bool = False):
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._bucket_histograms: Dict[str, BucketHistogram] = {}
        #: flat key -> label dict, for keys created via a labeled accessor;
        #: snapshots attach ``"labels"`` only for these, so plain
        #: instruments keep their original image shape.
        self._labels: Dict[str, Dict[str, str]] = {}

    # -- state -----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- instruments -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def bucket_histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> BucketHistogram:
        with self._lock:
            instrument = self._bucket_histograms.get(name)
            if instrument is None:
                instrument = self._bucket_histograms[name] = BucketHistogram(bounds)
            return instrument

    # -- labeled families ------------------------------------------------------
    #
    # A labeled series is an ordinary instrument under a flat
    # ``family{k=v,...}`` key plus a remembered label dict; there is no
    # separate family object.  That keeps snapshot/merge/delta untouched —
    # labeled series ride the existing pipeline — while the Prometheus
    # renderer regroups by family from the stored labels.

    def labeled_counter(self, name: str, **labels: str) -> Counter:
        key = labeled_name(name, labels)
        if labels:
            self._labels.setdefault(key, {k: str(v) for k, v in labels.items()})
        return self.counter(key)

    def labeled_gauge(self, name: str, **labels: str) -> Gauge:
        key = labeled_name(name, labels)
        if labels:
            self._labels.setdefault(key, {k: str(v) for k, v in labels.items()})
        return self.gauge(key)

    def labeled_histogram(self, name: str, **labels: str) -> Histogram:
        key = labeled_name(name, labels)
        if labels:
            self._labels.setdefault(key, {k: str(v) for k, v in labels.items()})
        return self.histogram(key)

    def labeled_bucket_histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> BucketHistogram:
        key = labeled_name(name, labels)
        if labels:
            self._labels.setdefault(key, {k: str(v) for k, v in labels.items()})
        return self.bucket_histogram(key, bounds)

    def labels_for(self, key: str) -> Optional[Dict[str, str]]:
        """The label dict of a flat key, or ``None`` for plain instruments."""
        found = self._labels.get(key)
        return dict(found) if found is not None else None

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A plain-dict, picklable image of every instrument."""
        with self._lock:
            out: Dict[str, Dict[str, Any]] = {}
            for name, c in self._counters.items():
                out[name] = c.snapshot()
            for name, g in self._gauges.items():
                out[name] = g.snapshot()
            for name, h in self._histograms.items():
                out[name] = h.snapshot()
            for name, bh in self._bucket_histograms.items():
                out[name] = bh.snapshot()
            for key, labels in self._labels.items():
                image = out.get(key)
                if image is not None:
                    image["labels"] = dict(labels)
            return out

    def merge(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a snapshot (typically a worker's delta) into this registry.

        Counters and histograms accumulate; gauges take the incoming value
        (last-wins — callers merge worker snapshots in deterministic order).
        """
        for name, image in snapshot.items():
            kind = image.get("type")
            labels = image.get("labels")
            if labels:
                self._labels.setdefault(name, {k: str(v) for k, v in labels.items()})
            if kind == "counter":
                self.counter(name).inc(int(image["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(image["value"]))
            elif kind == "bucket_histogram":
                bounds = tuple(float(b) for b in image["bounds"])
                bh = self.bucket_histogram(name, bounds)
                if bh.bounds != bounds:
                    raise ValueError(
                        f"bucket bounds mismatch merging {name!r}: "
                        f"{bh.bounds} != {bounds}"
                    )
                incoming = image["counts"]
                if len(incoming) != len(bh.counts):
                    raise ValueError(
                        f"bucket count mismatch merging {name!r}: "
                        f"{len(bh.counts)} buckets != {len(incoming)}"
                    )
                for i, n in enumerate(incoming):
                    bh.counts[i] += int(n)
                bh.count += int(image["count"])
                bh.total += float(image["sum"])
            elif kind == "histogram":
                h = self.histogram(name)
                count = int(image["count"])
                if count:
                    h.count += count
                    h.total += float(image["sum"])
                    lo, hi = image.get("min"), image.get("max")
                    if lo is not None and lo < h.min:
                        h.min = float(lo)
                    if hi is not None and hi > h.max:
                        h.max = float(hi)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._bucket_histograms.clear()
            self._labels.clear()


def snapshot_delta(
    after: Mapping[str, Mapping[str, Any]],
    before: Mapping[str, Mapping[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """The activity between two snapshots of the same registry.

    Counters and histogram count/sum subtract; gauges and histogram
    min/max keep the ``after`` value (they are not differential).
    """
    out: Dict[str, Dict[str, Any]] = {}
    for name, image in after.items():
        prior = before.get(name)
        kind = image.get("type")
        if prior is None:
            out[name] = dict(image)
            continue
        delta: Optional[Dict[str, Any]] = None
        if kind == "counter":
            value = int(image["value"]) - int(prior["value"])
            if value:
                delta = {"type": "counter", "value": value}
        elif kind == "gauge":
            delta = dict(image)
        elif kind == "bucket_histogram":
            count = int(image["count"]) - int(prior["count"])
            if count:
                delta = {
                    "type": "bucket_histogram",
                    "bounds": list(image["bounds"]),
                    "counts": [
                        int(a) - int(b)
                        for a, b in zip(image["counts"], prior["counts"])
                    ],
                    "count": count,
                    "sum": float(image["sum"]) - float(prior["sum"]),
                }
        elif kind == "histogram":
            count = int(image["count"]) - int(prior["count"])
            if count:
                delta = {
                    "type": "histogram",
                    "count": count,
                    "sum": float(image["sum"]) - float(prior["sum"]),
                    "min": image.get("min"),
                    "max": image.get("max"),
                }
        if delta is not None:
            if "labels" in image and kind != "gauge":
                delta["labels"] = dict(image["labels"])
            out[name] = delta
    return out


def render_snapshot(snapshot: Mapping[str, Mapping[str, Any]]) -> str:
    """Human-readable, sorted rendering for ``--metrics`` CLI output."""
    if not snapshot:
        return "(no metrics recorded)"
    lines: List[str] = []
    width = max(len(name) for name in snapshot)
    for name in sorted(snapshot):
        image = snapshot[name]
        kind = image.get("type")
        if kind == "counter":
            body = f"{image['value']}"
        elif kind == "gauge":
            body = f"{image['value']:g}"
        elif kind == "bucket_histogram":
            count = image.get("count", 0)
            if count:
                mean = float(image["sum"]) / count
                bounds = image["bounds"]
                counts = image["counts"]

                def _q(q: float) -> float:
                    target = q * count
                    cumulative = 0
                    for i, n in enumerate(counts):
                        cumulative += n
                        if cumulative >= target:
                            return bounds[min(i, len(bounds) - 1)]
                    return bounds[-1]

                # ~ marks bucket-bound estimates, not exact order statistics
                body = (
                    f"n={count} mean={mean:g} "
                    f"p50~{_q(0.50):g} p95~{_q(0.95):g} p99~{_q(0.99):g}"
                )
            else:
                body = "n=0"
        else:
            count = image.get("count", 0)
            if count:
                mean = float(image["sum"]) / count
                body = (
                    f"n={count} mean={mean:g} "
                    f"min={image['min']:g} max={image['max']:g}"
                )
            else:
                body = "n=0"
        lines.append(f"{name.ljust(width)}  {body}")
    return "\n".join(lines)


#: The process-global registry; ``REPRO_METRICS=1`` (or ``REPRO_TRACE=1`` —
#: a trace without its counters is half a story) arms it at import time.
_GLOBAL_METRICS = MetricsRegistry(
    enabled=env_truthy("REPRO_METRICS") or env_truthy("REPRO_TRACE")
)


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL_METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the old one."""
    global _GLOBAL_METRICS
    old, _GLOBAL_METRICS = _GLOBAL_METRICS, registry
    return old
