"""Spark extension: the paper's §I generality claim made concrete."""

from repro.spark.job import DEFAULT_EXECUTOR_SLICE, SparkAppBuilder
from repro.spark.stage import SINKS, SOURCES, SparkStageJob
from repro.spark.workloads import spark_kmeans, spark_pagerank, spark_sort

__all__ = [
    "DEFAULT_EXECUTOR_SLICE",
    "SINKS",
    "SOURCES",
    "SparkAppBuilder",
    "SparkStageJob",
    "spark_kmeans",
    "spark_pagerank",
    "spark_sort",
]
