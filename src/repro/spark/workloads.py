"""Spark reference applications, mirroring the HiBench workloads.

Each factory builds the Spark-native shape of a workload the MapReduce
catalogue also carries, so experiments can put the paper's §I claim — the
models extend to Spark — under test, and quantify Spark's caching advantage
on iterative algorithms inside one consistent world model.
"""

from __future__ import annotations

from repro.dag.workflow import Workflow
from repro.spark.job import SparkAppBuilder
from repro.units import gb


def spark_pagerank(
    input_mb: float = gb(30), iterations: int = 3, cached: bool = True
) -> Workflow:
    """PageRank: scan edges, build link structure, iterate rank updates.

    With ``cached=True`` the link structure is pinned in executor memory and
    every iteration reads it for free — the canonical Spark-vs-MapReduce
    win.  With ``cached=False`` each iteration re-reads shuffle files,
    approximating what a framework without RDD caching must do.
    """
    builder = (
        SparkAppBuilder("spark-pr" + ("" if cached else "-nocache"))
        .read(input_mb, cpu_mb_s=80.0, selectivity=1.0)
        .shuffle(selectivity=1.0, partitions=120, cpu_mb_s=70.0)
    )
    if cached:
        builder.cache()
    return (
        builder.iterate(iterations, selectivity=1.0, partitions=120, cpu_mb_s=70.0)
        .write(selectivity=0.05, cpu_mb_s=100.0)
        .build()
    )


def spark_kmeans(
    input_mb: float = gb(30), iterations: int = 3, cached: bool = True
) -> Workflow:
    """KMeans: scan and vectorise points, then iterate Lloyd steps.

    The point set is the cached RDD; each iteration is CPU-heavy distance
    computation with a tiny shuffle of partial centroid sums.
    """
    builder = (
        SparkAppBuilder("spark-km" + ("" if cached else "-nocache"))
        .read(input_mb, cpu_mb_s=60.0, selectivity=1.0)
        .shuffle(selectivity=1.0, partitions=160, cpu_mb_s=80.0)
    )
    if cached:
        builder.cache()
    return (
        builder.iterate(iterations, selectivity=0.02, partitions=160, cpu_mb_s=25.0)
        .write(selectivity=1.0, cpu_mb_s=100.0)
        .build()
    )


def spark_sort(input_mb: float = gb(30)) -> Workflow:
    """TeraSort in Spark clothes: scan, range-partition shuffle, write."""
    return (
        SparkAppBuilder("spark-sort")
        .read(input_mb, cpu_mb_s=90.0, selectivity=1.0)
        .shuffle(selectivity=1.0, partitions=120, cpu_mb_s=50.0)
        .write(selectivity=1.0, cpu_mb_s=90.0, replicas=1)
        .build()
    )
