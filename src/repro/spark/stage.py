"""Spark-style stages on top of the shared cost-model machinery.

The paper argues its results "are easy to be extended to other cluster-based
distributed systems such as Spark and Tez, of which the key mechanisms for
execution model, task distribution and fault-tolerance are similar" (§I).
This package makes that claim concrete: a Spark application is a DAG of
*stages* separated by shuffle boundaries, each stage a set of tasks
pipelining narrow transformations — which maps directly onto the task
execution model of Fig. 3.  What changes versus MapReduce is the task
anatomy:

* a stage reads from HDFS, from its parents' **shuffle files** (network
  fetch + source-disk read, *without* MapReduce's materialise-to-disk before
  reduce), or from a **cached RDD** (memory — no I/O at all, Spark's
  signature advantage for iterative workloads);
* it writes shuffle files for a child stage, caches its output, or persists
  to HDFS with replication.

:class:`SparkStageJob` is a map-only job whose task decomposition encodes
that anatomy via the ``custom_task_substages`` hook, so the simulator, the
BOE model, Algorithm 1, the tuner and the progress estimator all work on
Spark DAGs unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.resources import Resource
from repro.errors import SpecificationError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.phases import (
    OP_COMPUTE,
    OP_READ,
    OP_TRANSFER,
    OP_WRITE,
    OpSpec,
    SubStageSpec,
)
from repro.mapreduce.stage import StageKind

#: Recognised stage inputs/outputs.
SOURCES = ("hdfs", "shuffle", "cache")
SINKS = ("shuffle", "cache", "hdfs")


@dataclass(frozen=True)
class SparkStageJob(MapReduceJob):
    """One Spark stage, expressed as a schedulable (map-only) job.

    Field reuse from :class:`MapReduceJob`: ``input_mb`` is the data the
    stage consumes, ``map_selectivity`` its output/input ratio,
    ``map_cpu_mb_s`` the per-core throughput of its fused narrow
    transformations, ``config.replicas`` the HDFS replication when the sink
    is HDFS.  ``num_reducers`` is forced to 0 (stages are map-only; the
    shuffle boundary lives *between* stages).

    Attributes:
        input_from: where the stage's input lives ("hdfs", "shuffle",
            "cache").
        output_to: where its output goes ("shuffle", "cache", "hdfs").
        partitions: task count of the stage (Spark's RDD partition count);
            0 falls back to HDFS-split-derived sizing.
    """

    # Redeclared with default 0: Spark stages are map-only by construction.
    num_reducers: int = 0

    input_from: str = "hdfs"
    output_to: str = "shuffle"
    partitions: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.input_from not in SOURCES:
            raise SpecificationError(
                f"stage {self.name!r}: input_from must be one of {SOURCES}"
            )
        if self.output_to not in SINKS:
            raise SpecificationError(
                f"stage {self.name!r}: output_to must be one of {SINKS}"
            )
        if self.partitions < 0:
            raise SpecificationError(
                f"stage {self.name!r}: partitions must be >= 0"
            )
        if self.num_reducers != 0:
            raise SpecificationError(
                f"stage {self.name!r}: Spark stages are map-only "
                "(set partitions, not num_reducers)"
            )

    # -- task counts ------------------------------------------------------------

    @property
    def num_map_tasks(self) -> int:
        if self.partitions > 0:
            return self.partitions
        return super().num_map_tasks

    # -- task anatomy -----------------------------------------------------------

    def custom_task_substages(
        self, kind: StageKind, task_input_mb: float, remote_fraction: float
    ) -> List[SubStageSpec]:
        """The Spark task pipeline: fetch -> compute -> emit, all fused."""
        if kind is not StageKind.MAP:
            raise SpecificationError(
                f"Spark stage {self.name!r} has no {kind} tasks"
            )
        if task_input_mb <= 0:
            raise SpecificationError(
                f"stage {self.name!r}: task input must be positive"
            )
        ops: List[Optional[OpSpec]] = []

        if self.input_from == "hdfs":
            ops.append(OpSpec(OP_READ, Resource.DISK, task_input_mb))
        elif self.input_from == "shuffle":
            # Fetch the partition from every parent task's shuffle files:
            # source-disk read (attributed symmetrically to this node) plus
            # the remote fraction over the network.  Unlike MapReduce there
            # is no materialise-to-disk before processing.
            ops.append(OpSpec(OP_READ, Resource.DISK, task_input_mb))
            ops.append(
                OpSpec(OP_TRANSFER, Resource.NETWORK, task_input_mb * remote_fraction)
            )
        # input_from == "cache": served from executor memory, no I/O ops.

        ops.append(
            OpSpec(
                OP_COMPUTE,
                Resource.CPU,
                task_input_mb / self.map_cpu_mb_s,
                per_flow_cap=1.0,
            )
        )

        out = task_input_mb * self.map_selectivity
        if out > 0:
            if self.output_to == "shuffle":
                ops.append(OpSpec(OP_WRITE, Resource.DISK, out))
            elif self.output_to == "hdfs":
                replicas = self.config.replicas
                ops.append(OpSpec(OP_WRITE, Resource.DISK, out * replicas))
                if replicas > 1:
                    ops.append(
                        OpSpec(OP_TRANSFER, Resource.NETWORK, out * (replicas - 1))
                    )
            # output_to == "cache": pinned in executor memory, no I/O ops.

        filtered = tuple(op for op in ops if op is not None and op.amount > 0)
        if not filtered:
            # A fully in-memory no-op stage still schedules tasks.
            filtered = (OpSpec(OP_COMPUTE, Resource.CPU, 1e-9, 1.0),)
        return [SubStageSpec("stage", filtered)]
