"""Building Spark applications as DAGs of stages.

:class:`SparkAppBuilder` offers the fluent, RDD-flavoured surface users
expect — ``read`` / ``transform`` / ``shuffle`` / ``cache`` / ``iterate`` /
``write`` — and compiles to an ordinary
:class:`~repro.dag.workflow.Workflow` of :class:`SparkStageJob` nodes, so
every consumer in the library (simulator, BOE, Algorithm 1, tuner, progress
estimator) runs Spark applications without modification.

Stage boundaries follow Spark's rules: narrow transformations fuse into the
current stage (they only change the compute rate and selectivity), a wide
dependency (shuffle) closes the stage, and ``cache()`` marks the output so
downstream consumers read from memory instead of storage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.resources import ResourceVector
from repro.dag.workflow import Workflow
from repro.errors import SpecificationError
from repro.mapreduce.config import JobConfig, NO_COMPRESSION
from repro.spark.stage import SparkStageJob

#: Default executor slice: Spark executors typically run several cores in a
#: sizeable JVM; per-task that amounts to one core and this much memory.
DEFAULT_EXECUTOR_SLICE = ResourceVector(1.0, 2_500.0)


def _stage_config(task_overhead_s: float) -> JobConfig:
    return JobConfig(
        compression=NO_COMPRESSION,
        replicas=3,
        map_container=DEFAULT_EXECUTOR_SLICE,
        # Executors are reused across a stage's waves, so the per-task
        # launch cost is far below a MapReduce container start.
        task_overhead_s=task_overhead_s,
    )


class SparkAppBuilder:
    """Fluent construction of a Spark application.

    Example (PageRank-shaped)::

        app = (
            SparkAppBuilder("pr")
            .read(gb(30), cpu_mb_s=80.0)
            .shuffle(selectivity=1.0, partitions=120, cpu_mb_s=60.0)
            .cache()                                  # links stay in memory
            .iterate(3, selectivity=1.0, partitions=120, cpu_mb_s=60.0)
            .write(selectivity=0.1, cpu_mb_s=80.0)
            .build()
        )
    """

    def __init__(self, name: str, task_overhead_s: float = 0.2):
        if not name:
            raise SpecificationError("application name must be non-empty")
        self._name = name
        self._config = _stage_config(task_overhead_s)
        self._stages: List[SparkStageJob] = []
        self._edges: List[Tuple[str, str]] = []
        self._head: Optional[SparkStageJob] = None
        self._counter = 0

    # -- plumbing --------------------------------------------------------------

    def _next_name(self, kind: str) -> str:
        self._counter += 1
        return f"{self._name}-s{self._counter}-{kind}"

    def _append(self, stage: SparkStageJob, parents: Sequence[str]) -> None:
        self._stages.append(stage)
        for parent in parents:
            self._edges.append((parent, stage.name))
        self._head = stage

    def _require_head(self) -> SparkStageJob:
        if self._head is None:
            raise SpecificationError(
                f"app {self._name!r}: call .read(...) before transformations"
            )
        return self._head

    # -- the RDD-flavoured surface ----------------------------------------------

    def read(
        self,
        input_mb: float,
        cpu_mb_s: float = 100.0,
        selectivity: float = 1.0,
        partitions: int = 0,
    ) -> "SparkAppBuilder":
        """Scan a dataset from HDFS (opens the first stage)."""
        stage = SparkStageJob(
            name=self._next_name("scan"),
            input_mb=input_mb,
            map_selectivity=selectivity,
            map_cpu_mb_s=cpu_mb_s,
            partitions=partitions,
            input_from="hdfs",
            output_to="shuffle",
            config=self._config,
        )
        self._append(stage, parents=[])
        return self

    def shuffle(
        self,
        selectivity: float,
        partitions: int,
        cpu_mb_s: float = 60.0,
    ) -> "SparkAppBuilder":
        """A wide dependency: close the stage, start one reading its shuffle."""
        head = self._require_head()
        stage = SparkStageJob(
            name=self._next_name("shuffle"),
            input_mb=head.output_mb,
            map_selectivity=selectivity,
            map_cpu_mb_s=cpu_mb_s,
            partitions=partitions,
            input_from="shuffle",
            output_to="shuffle",
            config=self._config,
        )
        self._append(stage, parents=[head.name])
        return self

    def cache(self) -> "SparkAppBuilder":
        """Pin the head stage's output in executor memory."""
        head = self._require_head()
        updated = replace(head, output_to="cache")
        self._stages[self._stages.index(head)] = updated
        self._head = updated
        return self

    def iterate(
        self,
        iterations: int,
        selectivity: float,
        partitions: int,
        cpu_mb_s: float = 60.0,
    ) -> "SparkAppBuilder":
        """Iterative refinement over the (typically cached) head dataset.

        This is the PageRank/KMeans loop shape: every iteration re-reads the
        *base* dataset captured at call time (from memory when it is cached,
        over the shuffle otherwise) and produces the iteration's small
        update, which the next iteration depends on as a barrier.  Chaining
        the data volume through the iterations instead would shrink a
        KMeans-style loop to nothing after one step — the classic modelling
        mistake Spark's own RDD lineage avoids.
        """
        if iterations < 1:
            raise SpecificationError(f"iterations must be >= 1: {iterations}")
        base = self._require_head()
        source = "cache" if base.output_to == "cache" else "shuffle"
        for _ in range(iterations):
            head = self._require_head()
            parents = [head.name]
            if head is not base and base.name not in parents:
                parents.append(base.name)
            stage = SparkStageJob(
                name=self._next_name("iter"),
                input_mb=base.output_mb,
                map_selectivity=selectivity,
                map_cpu_mb_s=cpu_mb_s,
                partitions=partitions,
                input_from=source,
                output_to="shuffle",
                config=self._config,
            )
            self._append(stage, parents=parents)
        return self

    def write(
        self,
        selectivity: float = 1.0,
        cpu_mb_s: float = 100.0,
        partitions: int = 0,
        replicas: int = 3,
    ) -> "SparkAppBuilder":
        """Persist the head output to HDFS (the action that runs the app)."""
        head = self._require_head()
        source = "cache" if head.output_to == "cache" else "shuffle"
        stage = SparkStageJob(
            name=self._next_name("write"),
            input_mb=head.output_mb,
            map_selectivity=selectivity,
            map_cpu_mb_s=cpu_mb_s,
            partitions=partitions or head.num_map_tasks,
            input_from=source,
            output_to="hdfs",
            config=self._config.with_(replicas=replicas),
        )
        self._append(stage, parents=[head.name])
        return self

    def join(self, other_head: str, selectivity: float, partitions: int,
             cpu_mb_s: float = 60.0) -> "SparkAppBuilder":
        """Shuffle-join the head with another already-built stage's output."""
        head = self._require_head()
        other = next(
            (s for s in self._stages if s.name == other_head), None
        )
        if other is None:
            raise SpecificationError(f"no stage named {other_head!r} to join")
        stage = SparkStageJob(
            name=self._next_name("join"),
            input_mb=head.output_mb + other.output_mb,
            map_selectivity=selectivity,
            map_cpu_mb_s=cpu_mb_s,
            partitions=partitions,
            input_from="shuffle",
            output_to="shuffle",
            config=self._config,
        )
        self._append(stage, parents=[head.name, other.name])
        return self

    @property
    def head_name(self) -> str:
        return self._require_head().name

    def build(self) -> Workflow:
        if not self._stages:
            raise SpecificationError(f"app {self._name!r} has no stages")
        return Workflow(
            name=self._name,
            jobs=tuple(self._stages),
            edges=frozenset(self._edges),
        )
