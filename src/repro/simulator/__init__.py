"""Ground-truth substrate: fluid discrete-event cluster simulation."""

from repro.simulator.engine import SimulationConfig, Simulator, simulate
from repro.simulator.columnar import ColumnarResult, ColumnarSimulator
from repro.simulator.failures import FailureModel, NO_FAILURES
from repro.simulator.events import CohortDeadlineHeap, EventQueue
from repro.simulator.metrics import (
    average_parallelism,
    fit_normal,
    mean_task_time,
    median_task_time,
    median_task_time_in_state,
    observed_parallelism,
    stage_duration,
    state_summary,
    task_durations,
    tasks_in_state,
)
from repro.simulator.seeding import replication_config, replication_seeds
from repro.simulator.sharing import (
    FlowSpec,
    pool_utilisation,
    solve_max_min,
    solve_max_min_classes,
)
from repro.simulator.trace import (
    SimulationResult,
    StageTrace,
    StateTrace,
    SubStageTrace,
    TaskTrace,
)

__all__ = [
    "CohortDeadlineHeap",
    "ColumnarResult",
    "ColumnarSimulator",
    "EventQueue",
    "FailureModel",
    "NO_FAILURES",
    "FlowSpec",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "StageTrace",
    "StateTrace",
    "SubStageTrace",
    "TaskTrace",
    "average_parallelism",
    "fit_normal",
    "mean_task_time",
    "median_task_time",
    "median_task_time_in_state",
    "observed_parallelism",
    "pool_utilisation",
    "replication_config",
    "replication_seeds",
    "simulate",
    "solve_max_min",
    "solve_max_min_classes",
    "stage_duration",
    "state_summary",
    "task_durations",
    "tasks_in_state",
]
