"""Deterministic event queue for the discrete-event engine.

A thin wrapper over :mod:`heapq` that (a) breaks time ties by insertion order
so runs are reproducible, and (b) supports lazy cancellation, which the
engine uses when an allocation change invalidates a previously predicted
completion time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Optional, Tuple

from repro.errors import SimulationError


class CohortDeadlineHeap:
    """Completion-deadline heap for the columnar engine: indices, not objects.

    Each entry covers a *cohort* — a numpy array of run-slot indices that
    share one solver class, one progress rate and one predicted decision
    instant (symmetric waves collapse to a handful of cohorts per event).
    Instead of per-entry cancellation tokens, validity is *epoch*-based: the
    engine stamps every slot with the epoch of its latest re-share, and an
    entry only speaks for the slots whose stamp still equals the entry's
    epoch.  Stale entries cost one pop; there is no cancel bookkeeping at
    all, which is what keeps re-shares O(cohorts) rather than O(runs).

    Ties in time break by push order (a monotone counter), mirroring
    :class:`EventQueue`; the counter also keeps the numpy payloads out of
    tuple comparison.
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Any, float]] = []
        self._counter = itertools.count()

    def push(self, time: float, epoch: int, slots: Any, rate: float) -> None:
        """Schedule the cohort ``slots`` (validity ``epoch``) at ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule deadline in negative time: {time}")
        heapq.heappush(self._heap, (time, next(self._counter), epoch, slots, rate))

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def peek(self) -> Optional[Tuple[float, int, int, Any, float]]:
        return self._heap[0] if self._heap else None

    def pop(self) -> Tuple[float, int, int, Any, float]:
        if not self._heap:
            raise SimulationError("pop from empty deadline heap")
        return heapq.heappop(self._heap)

    def pop_due(self, now: float, epochs: Any, eps: float) -> List[Tuple[Any, float]]:
        """Pop every cohort due at ``now``, validated against ``epochs``.

        Returns ``(valid slots, rate)`` pairs in pop order — the batched
        form of the engine's peek/validate/pop loop.  A cohort is *due*
        when firing it now would under-run its remaining progress by at
        most ``eps`` (the fuzzy window ``(t - now) * rate <= eps``), and
        it *speaks for* the slots whose epoch stamp still equals the
        entry's.  Fully stale entries are dropped in passing.
        The heap stops at the first non-due head, so one call drains
        exactly the same-instant (and near-tied) cohort group.
        """
        out: List[Tuple[Any, float]] = []
        heap = self._heap
        while heap:
            time, _counter, epoch, slots, rate = heap[0]
            valid = slots[epochs[slots] == epoch]
            if valid.size == 0:
                heapq.heappop(heap)
                continue
            if (time - now) * rate > eps:
                break
            heapq.heappop(heap)
            out.append((valid, rate))
        return out

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class EventQueue:
    """A priority queue of (time, payload) events with stable ordering."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = itertools.count()
        self._cancelled: set = set()

    def push(self, time: float, payload: Any) -> int:
        """Schedule ``payload`` at ``time``; returns a token for cancellation."""
        if time < 0:
            raise SimulationError(f"cannot schedule event in negative time: {time}")
        token = next(self._counter)
        heapq.heappush(self._heap, (time, token, payload))
        return token

    def cancel(self, token: int) -> None:
        """Lazily cancel the event with the given token."""
        self._cancelled.add(token)
        # Cancelled entries are normally discarded as they surface at the
        # top of the heap, but a workload that reschedules far-future events
        # over and over (the fast engine re-issues completion deadlines on
        # every re-share) would otherwise accumulate dead weight.  Compact
        # once the majority of the heap is dead.
        if len(self._cancelled) > 64 and 2 * len(self._cancelled) > len(self._heap):
            self._heap = [e for e in self._heap if e[1] not in self._cancelled]
            heapq.heapify(self._heap)
            self._cancelled.clear()

    def _skip_cancelled(self) -> None:
        while self._heap and self._heap[0][1] in self._cancelled:
            _, token, _ = heapq.heappop(self._heap)
            self._cancelled.discard(token)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None when empty."""
        self._skip_cancelled()
        return self._heap[0][0] if self._heap else None

    def peek(self) -> Optional[Tuple[float, Any]]:
        """(time, payload) of the earliest live event without removing it."""
        self._skip_cancelled()
        if not self._heap:
            return None
        time, _, payload = self._heap[0]
        return time, payload

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest live event as (time, payload)."""
        self._skip_cancelled()
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, _, payload = heapq.heappop(self._heap)
        return time, payload

    def pop_all_at(self, time: float, tol: float = 1e-9) -> List[Any]:
        """Pop every live event scheduled within ``tol`` of ``time``."""
        payloads: List[Any] = []
        while True:
            head = self.peek_time()
            if head is None or head > time + tol:
                break
            _, payload = self.pop()
            payloads.append(payload)
        return payloads

    def __len__(self) -> int:
        self._skip_cancelled()
        return len(self._heap)

    def __bool__(self) -> bool:
        return len(self) > 0
