"""Task-failure injection — MapReduce's fault-tolerance substrate.

The frameworks the paper targets re-execute failed tasks (Dean & Ghemawat's
original fault-tolerance story, cited in §I as one of the mechanisms shared
by MapReduce/Spark/Tez).  The simulator reproduces that behaviour so model
error under churn can be studied: a failing task dies partway through its
work, its container is released, and the task is re-queued for a fresh
attempt (Hadoop's ``mapreduce.map.maxattempts`` limit applies).

Failures are *deterministic* given the model's seed: each (task, attempt)
pair draws a failure decision and, if it fails, a progress fraction at which
the attempt dies.  Determinism keeps experiments reproducible and lets the
estimator-side expected-rework correction be validated exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import SpecificationError


@dataclass(frozen=True)
class FailureModel:
    """Per-attempt task failure injection.

    Attributes:
        probability: chance that any given task *attempt* fails.
        max_attempts: attempts after which the job is declared failed
            (Hadoop default: 4).
        seed: RNG seed mixed with the task identity.
    """

    probability: float = 0.0
    max_attempts: int = 4
    seed: int = 11

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise SpecificationError(
                f"failure probability must be in [0, 1): {self.probability}"
            )
        if self.max_attempts < 1:
            raise SpecificationError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )

    @property
    def enabled(self) -> bool:
        return self.probability > 0.0

    def draw(self, task_id: str, attempt: int) -> Tuple[bool, float]:
        """Failure decision for one attempt.

        Returns:
            (fails, fail_at): whether this attempt fails and, if so, the
            fraction of the attempt's work at which it dies (uniform in
            (0.05, 0.95) — deaths at the very edges are indistinguishable
            from immediate restarts or successes).
        """
        key = f"{self.seed}/{task_id}/{attempt}"
        rng = np.random.default_rng(zlib.crc32(key.encode()) & 0xFFFFFFFF)
        fails = bool(rng.random() < self.probability)
        fail_at = float(0.05 + 0.9 * rng.random()) if fails else 1.0
        return fails, fail_at

    def expected_attempts(self) -> float:
        """Expected number of attempts per task (geometric, truncated)."""
        p = self.probability
        if p == 0.0:
            return 1.0
        # Sum_{k=1..max} k * p^(k-1) * (1-p), conditioned on success within
        # the attempt budget (jobs that exhaust it abort the simulation).
        total = 0.0
        norm = 0.0
        for k in range(1, self.max_attempts + 1):
            weight = (p ** (k - 1)) * (1 - p)
            total += k * weight
            norm += weight
        return total / norm

    def expected_work_factor(self) -> float:
        """Expected total work per task relative to a failure-free run.

        A failed attempt dies halfway through on average (uniform death
        point), so each extra attempt beyond the first costs ~0.5 task's
        work plus the final full attempt.
        """
        extra_attempts = self.expected_attempts() - 1.0
        return 1.0 + 0.5 * extra_attempts


NO_FAILURES = FailureModel(probability=0.0)
