"""Task-failure injection — MapReduce's fault-tolerance substrate.

The frameworks the paper targets re-execute failed tasks (Dean & Ghemawat's
original fault-tolerance story, cited in §I as one of the mechanisms shared
by MapReduce/Spark/Tez).  The simulator reproduces that behaviour so model
error under churn can be studied: a failing task dies partway through its
work, its container is released, and the task is re-queued for a fresh
attempt (Hadoop's ``mapreduce.map.maxattempts`` limit applies).

Failures are *deterministic* given the model's seed: each (task, attempt)
pair draws a failure decision and, if it fails, a progress fraction at which
the attempt dies.  Determinism keeps experiments reproducible and lets the
estimator-side expected-rework correction be validated exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.errors import SpecificationError

#: 2**64, the denominator turning a 64-bit digest word into a uniform in [0, 1).
_U64 = float(1 << 64)


@lru_cache(maxsize=128)
def _seed_hasher(seed: int) -> "hashlib._Hash":
    """Per-model base hasher, keyed once with the seed.

    ``FailureModel.draw`` is called once per task *attempt* — tens of
    thousands of times in a large run — so the seed prefix is absorbed into
    a cached hasher and each draw only pays one ``copy`` + ``update``
    (~1.5 µs) instead of constructing a fresh ``np.random.default_rng``
    (~10 µs).
    """
    return hashlib.blake2b(f"{seed}/".encode(), digest_size=16)


@dataclass(frozen=True)
class FailureModel:
    """Per-attempt task failure injection.

    Attributes:
        probability: chance that any given task *attempt* fails.
        max_attempts: attempts after which the job is declared failed
            (Hadoop default: 4).
        seed: RNG seed mixed with the task identity.
    """

    probability: float = 0.0
    max_attempts: int = 4
    seed: int = 11

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise SpecificationError(
                f"failure probability must be in [0, 1): {self.probability}"
            )
        if self.max_attempts < 1:
            raise SpecificationError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )

    @property
    def enabled(self) -> bool:
        return self.probability > 0.0

    def draw(self, task_id: str, attempt: int) -> Tuple[bool, float]:
        """Failure decision for one attempt.

        The two uniforms are the halves of one 128-bit ``blake2b`` digest
        of ``"{seed}/{task_id}/{attempt}"`` — a pure function of the model
        seed and the attempt identity, so the documented contract holds:
        draws are deterministic given the seed, identical across processes
        and platforms, and independent across (task, attempt) pairs.

        Returns:
            (fails, fail_at): whether this attempt fails and, if so, the
            fraction of the attempt's work at which it dies (uniform in
            (0.05, 0.95) — deaths at the very edges are indistinguishable
            from immediate restarts or successes).
        """
        hasher = _seed_hasher(self.seed).copy()
        hasher.update(f"{task_id}/{attempt}".encode())
        digest = hasher.digest()
        u_fail = int.from_bytes(digest[:8], "little") / _U64
        fails = u_fail < self.probability
        if not fails:
            return False, 1.0
        u_at = int.from_bytes(digest[8:], "little") / _U64
        return True, 0.05 + 0.9 * u_at

    def expected_attempts(self) -> float:
        """Expected number of attempts per task (geometric, truncated)."""
        p = self.probability
        if p == 0.0:
            return 1.0
        # Sum_{k=1..max} k * p^(k-1) * (1-p), conditioned on success within
        # the attempt budget (jobs that exhaust it abort the simulation).
        total = 0.0
        norm = 0.0
        for k in range(1, self.max_attempts + 1):
            weight = (p ** (k - 1)) * (1 - p)
            total += k * weight
            norm += weight
        return total / norm

    def expected_work_factor(self) -> float:
        """Expected total work per task relative to a failure-free run.

        A failed attempt dies halfway through on average (uniform death
        point), so each extra attempt beyond the first costs ~0.5 task's
        work plus the final full attempt.
        """
        extra_attempts = self.expected_attempts() - 1.0
        return 1.0 + 0.5 * extra_attempts


NO_FAILURES = FailureModel(probability=0.0)
