"""Fair sharing of resource pools among fluid flows.

This is the mechanism that makes the simulator a faithful stand-in for a real
cluster: at any instant, every active task sub-stage is a *flow* that needs
several resources at once (its pipelined operations), and the OS/hardware
time-share each resource among its users — the disk scheduler fair-queues
bytes, the CPU scheduler round-robins runnable threads, the NIC serialises
packets.

The physical semantics are **per-device equal sharing among demanding flows,
with redistribution**:

* each device serves its active demanders at equal rates, *except* that a
  flow whose progress is limited elsewhere (its bottleneck operation sits on
  another device, or it is capped at one core) demands less than its fair
  share — and the slack goes back to the hungry flows (water-filling);
* a flow's progress rate is the minimum over its operations of what each
  device grants it (the pipeline moves at its slowest operation — the fluid
  version of the paper's Eq. 3).

Formally the allocation is the fixed point of

    r_i = min( cap_i,  min_{R in ops(i)}  tau_R / w_iR )
    where tau_R solves   sum_i min(w_iR * r_i, tau_R) = C_R   (tau_R = inf
    when the device is unsaturated)

which we compute by Gauss-Seidel iteration from an optimistic start.  The
fixed point realises the paper's execution model mechanically: every flow is
limited by exactly one bottleneck operation, and non-bottleneck devices run
at utilisation ``p_X < 1`` (the Fig. 4 numbers); a CPU-bound job's tasks
occupy the disk only at their actual ``p_disk``, so a co-running disk-bound
job observes a larger effective share — the redistribution the paper's
Table II discussion relies on.

Rates are expressed in *progress units per second*: a flow that must move
``w_p`` units through pool ``p`` per unit of progress consumes ``rate * w_p``
of that pool's capacity.

Symmetric flows — identical ``(demands, cap)`` signatures, ubiquitous at
scale because every task of one wave of one stage performs the same work —
provably receive equal rates at the fixed point (the allocation is the
unique max-min-fair point and is invariant under permuting identical flows).
``solve_max_min`` therefore collapses each group of identical flows into one
*equivalence class* with a multiplicity and iterates over classes: a node
running six identical map tasks solves a 1-class problem, not a 6-flow
Gauss–Seidel.  Pass ``collapse=False`` for the historical per-flow
iteration (kept as the reference implementation the collapsed solver is
tested against).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simulator import kernels as _kernels

_EPS = 1e-12
_MAX_ITER = 500
_REL_TOL = 1e-10
# The collapsed solver self-consistently places whole classes at the water
# level, so each sweep is a contraction with a tiny per-sweep cost (a handful
# of classes instead of dozens of flows).  Converging it much tighter than
# the per-flow reference keeps the two solutions — and hence fast- and
# reference-engine traces — within ~1e-10 relative of each other.
_REL_TOL_COLLAPSED = 1e-13
# The damped fallback phases accept a slightly looser fixed point: damping
# halves the step, so the oscillation amplitude — not the distance to the
# fixed point — is what the residual measures there.
_REL_TOL_DAMPED = 1e-9
_REL_TOL_COLLAPSED_DAMPED = 1e-11


@dataclass(frozen=True)
class FlowSpec:
    """One fluid flow competing for pooled resources.

    Attributes:
        flow_id: unique identifier.
        demands: (pool_id, weight) pairs; ``weight`` is the pool units the
            flow consumes per unit of progress.  Zero-weight entries must be
            filtered out by the caller.
        cap: optional private progress-rate cap (units of progress per
            second), e.g. ``1/amount`` for a one-core compute operation.
    """

    flow_id: str
    demands: Tuple[Tuple[str, float], ...]
    cap: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.demands and self.cap is None:
            raise SimulationError(
                f"flow {self.flow_id!r} has no demands and no cap; its rate "
                "would be unbounded — zero-work flows must complete instantly "
                "at the engine level instead"
            )
        for pool_id, weight in self.demands:
            if weight <= 0:
                raise SimulationError(
                    f"flow {self.flow_id!r} has non-positive demand {weight} on {pool_id!r}"
                )
        if self.cap is not None and self.cap <= 0:
            raise SimulationError(f"flow {self.flow_id!r} has non-positive cap")


def _hungry_level(others: List[float], capacity: float) -> float:
    """The share a flow would receive on a device if it demanded infinitely,
    while the ``others`` demand the given amounts.

    Solves ``tau + sum_j min(d_j, tau) = capacity`` for ``tau``: the flows
    smaller than the water level keep their demand, everyone else (including
    the hungry flow) gets ``tau``.
    """
    if not others:
        return capacity
    ordered = sorted(others)
    n = len(ordered)
    prefix = 0.0
    for m, demand in enumerate(ordered):
        # Hypothesis: the m smallest others are fully satisfied; the hungry
        # flow and the remaining (n - m) others all sit at the level.
        tau = (capacity - prefix) / (n - m + 1)
        if tau <= demand + _EPS:
            return tau
        prefix += demand
    return capacity - prefix


def _hungry_level_grouped(
    others: List[Tuple[float, int]], capacity: float, hungry: int = 1
) -> float:
    """:func:`_hungry_level` over (demand, multiplicity) groups, with a
    *class* of ``hungry`` identical flows demanding infinitely.

    Solves ``hungry * tau + sum_j min(d_j, tau) = capacity``.  Within a
    group either every member fits under the water level or none does
    (equal demands), so groups are admitted wholesale.  Treating the whole
    hungry class simultaneously (rather than one member against ``m - 1``
    frozen copies of its own old rate) is what lets the class-level
    Gauss-Seidel land on the self-consistent share in one step instead of
    creeping towards it — at the fixed point a bottlenecked class's members
    all sit *at* the level, so the equations coincide.
    """
    if not others:
        return capacity / hungry
    ordered = sorted(others)
    total = sum(count for _, count in ordered)
    prefix = 0.0
    consumed = 0
    for demand, count in ordered:
        tau = (capacity - prefix) / (total - consumed + hungry)
        if tau <= demand + _EPS:
            return tau
        prefix += demand * count
        consumed += count
    return (capacity - prefix) / hungry


def _nonconvergence(
    residual: float, n_classes: int, damping: float, tol: float
) -> SimulationError:
    """Diagnostic error for a Gauss-Seidel that exhausted its sweep budget.

    Historically both solvers silently returned the last iterate here, so a
    divergent sharing problem would feed garbage rates into the engine and
    surface (if at all) as an inexplicable trace.  Failing loudly with the
    residual makes the pathology attributable.
    """
    return SimulationError(
        "max-min sharing failed to converge: relative residual "
        f"{residual:.3e} > {tol:.0e} after {_MAX_ITER} damped sweeps "
        f"(classes={n_classes}, damping={damping})"
    )


def _hungry_level_grouped_arrays(
    demands: np.ndarray, counts: np.ndarray, capacity: float, hungry: int
) -> float:
    """Vectorised :func:`_hungry_level_grouped` over parallel arrays.

    Bit-identical to the scalar version by construction: ``np.lexsort`` with
    ``demands`` primary and ``counts`` secondary reproduces the tuple sort of
    ``sorted([(demand, count), ...])``, and ``np.cumsum`` accumulates float64
    partial sums strictly left-to-right — the same additions in the same
    order as the scalar ``prefix +=`` loop.  A property test
    (``test_sharing.py::TestClassSolver``) pins the two paths to exact float
    equality.

    Dispatches to :mod:`repro.simulator.kernels`, which holds the canonical
    numpy implementation plus an optional numba-compiled twin (gated by
    ``REPRO_KERNELS``) performing the same float operations in the same
    order — either tier returns the identical float.
    """
    return _kernels.water_fill_grouped(demands, counts, capacity, hungry)


def class_sort_key(cap: Optional[float], items: Tuple[Tuple[str, float], ...]):
    """Canonical ordering key of one equivalence class.

    Shared between :func:`_solve_collapsed` and the columnar engine's class
    registry so both present identical class *sequences* to the solver: two
    calls seeing the same multiset of flows perform bit-identical sweeps,
    which is what keeps symmetric cluster nodes on float-identical rates.
    """
    return (cap is None, cap if cap is not None else 0.0, items)


def solve_max_min_classes(
    cls_weights: Sequence[Mapping[str, float]],
    cls_caps: Sequence[Optional[float]],
    multiplicity: Sequence[int],
    capacities: Mapping[str, float],
) -> np.ndarray:
    """Array-native class-level solver — the columnar engine's entry point.

    Takes the equivalence classes *pre-grouped* (in :func:`class_sort_key`
    order) and returns one rate per class as a float64 array, skipping the
    per-flow dict plumbing of :func:`solve_max_min` entirely.  Water levels
    are computed by the vectorised :func:`_hungry_level_grouped_arrays`; the
    Gauss-Seidel sweep itself stays sequential because that is what
    Gauss-Seidel *is* — each class update must see its predecessors' fresh
    rates within the sweep.

    The arithmetic is bit-identical to :func:`_solve_collapsed` (same
    operations, same order — pinned by a property test), so an engine
    resolving a node through either path lands on the same float rates.
    """
    n_classes = len(cls_weights)
    rates = np.zeros(n_classes)
    if n_classes == 0:
        return rates

    # Pools in first-seen order over the canonical class sequence — the same
    # insertion order _solve_collapsed's pool_users dict ends up with, which
    # matters to _repair_feasible's (rarely triggered) scaling order.
    pool_ids: List[str] = []
    seen_pools = set()
    for agg in cls_weights:
        for pool_id in agg:
            if pool_id not in seen_pools:
                seen_pools.add(pool_id)
                pool_ids.append(pool_id)
    pidx = {pool_id: i for i, pool_id in enumerate(pool_ids)}
    n_pools = len(pool_ids)

    weights = np.zeros((n_classes, n_pools))
    for ci, agg in enumerate(cls_weights):
        for pool_id, weight in agg.items():
            weights[ci, pidx[pool_id]] = weight
    caps_vec = np.array([float(capacities[p]) for p in pool_ids])
    mult = np.asarray(multiplicity, dtype=np.int64)
    cap_arr = np.array(
        [math.inf if c is None else float(c) for c in cls_caps]
    )

    # users[p]: classes demanding pool p (ascending ci = canonical order);
    # others[ci][p]: those users minus ci, pre-gathered for the sweep.
    users = [np.flatnonzero(weights[:, p] > 0.0) for p in range(n_pools)]
    class_pools: List[List[int]] = [
        [int(p) for p in np.flatnonzero(weights[ci] > 0.0)]
        for ci in range(n_classes)
    ]
    others = [
        {p: users[p][users[p] != ci] for p in class_pools[ci]}
        for ci in range(n_classes)
    ]

    # Optimistic start: each class's flows alone on the cluster (min over
    # the same divisions as the scalar start loop; min is order-free).
    with np.errstate(divide="ignore"):
        alone = np.where(weights > 0.0, caps_vec / weights, math.inf)
    rates[:] = np.minimum(cap_arr, alone.min(axis=1, initial=math.inf))

    def sweep(damping: float) -> float:
        max_change = 0.0
        for ci in range(n_classes):
            bound = cap_arr[ci]
            hungry = int(mult[ci])
            for p in class_pools[ci]:
                up = others[ci][p]
                level = _hungry_level_grouped_arrays(
                    weights[up, p] * rates[up],
                    mult[up],
                    caps_vec[p],
                    hungry,
                )
                bound = min(bound, level / weights[ci, p])
            if bound == math.inf:
                raise SimulationError(f"class {ci} is unbounded")
            updated = damping * rates[ci] + (1.0 - damping) * bound
            max_change = max(
                max_change, abs(updated - rates[ci]) / max(rates[ci], _EPS)
            )
            rates[ci] = updated
        return max_change

    residual = math.inf
    converged = False
    for _ in range(_MAX_ITER):
        residual = sweep(damping=0.0)
        if residual <= _REL_TOL_COLLAPSED:
            converged = True
            break
    if not converged:
        for _ in range(_MAX_ITER):
            residual = sweep(damping=0.5)
            if residual <= _REL_TOL_COLLAPSED_DAMPED:
                converged = True
                break
    if not converged:
        raise _nonconvergence(
            residual, n_classes, 0.5, _REL_TOL_COLLAPSED_DAMPED
        )

    final = [max(float(r), 0.0) for r in rates]
    pool_users = {p: [int(ci) for ci in users[pidx[p]]] for p in pool_ids}
    _repair_feasible(final, cls_weights, [int(m) for m in mult], pool_users, capacities)
    return np.asarray(final)


def _repair_feasible(
    rates: List[float],
    weights: Sequence[Mapping[str, float]],
    multiplicity: Sequence[int],
    pool_users: Mapping[str, Sequence[int]],
    capacities: Mapping[str, float],
) -> None:
    """Scale oversubscribed pools' users down until every pool is feasible.

    Numerical leftovers of the Gauss-Seidel may overshoot a pool by a hair.
    Scaling a pool's users down never *increases* any pool's usage, so the
    repair converges; it is nevertheless iterated to an explicit fixed point
    (no pool above capacity) rather than trusting a single order-dependent
    pass, and guarded against the theoretical non-termination.  Mutates
    ``rates`` in place.
    """
    for _ in range(len(pool_users) + 1):
        scaled = False
        for pool_id, users in pool_users.items():
            used = sum(
                weights[i][pool_id] * rates[i] * multiplicity[i] for i in users
            )
            cap = capacities[pool_id]
            if used > cap * (1.0 + 1e-9):
                scale = cap / used
                for i in users:
                    rates[i] *= scale
                scaled = True
        if not scaled:
            return
    raise SimulationError(
        "feasibility repair failed to converge; rates remain oversubscribed"
    )  # pragma: no cover - scaling is monotone, one pass always suffices


def solve_max_min(
    flows: Sequence[FlowSpec],
    capacities: Mapping[str, float],
    collapse: bool = True,
) -> Dict[str, float]:
    """Equilibrium progress rates for ``flows`` over ``capacities``.

    Args:
        flows: the competing flows.  Flow ids must be unique.
        capacities: pool id -> capacity (units per second).  Every pool a
            flow references must be present and positive.
        collapse: solve over equivalence classes of identical flows
            (default).  ``False`` runs the historical per-flow iteration;
            both converge to the same fixed point (identical flows receive
            equal rates by symmetry), the collapsed form in far fewer
            operations when flows repeat.

    Returns:
        flow id -> progress rate (units of progress per second).
    """
    seen = set()
    for flow in flows:
        if flow.flow_id in seen:
            raise SimulationError(f"duplicate flow id {flow.flow_id!r}")
        seen.add(flow.flow_id)
        for pool_id, _ in flow.demands:
            if pool_id not in capacities:
                raise SimulationError(
                    f"flow {flow.flow_id!r} references unknown pool {pool_id!r}"
                )
    for pool_id, cap in capacities.items():
        if cap <= 0:
            raise SimulationError(f"pool {pool_id!r} has non-positive capacity {cap}")
    if not flows:
        return {}

    # A flow may carry several operations on the same pool (e.g. a disk read
    # and a disk write): they serialise on that device, so the flow's demand
    # per unit of progress is their *sum*.
    weights: List[Dict[str, float]] = []
    for flow in flows:
        agg: Dict[str, float] = {}
        for pool_id, weight in flow.demands:
            agg[pool_id] = agg.get(pool_id, 0.0) + weight
        weights.append(agg)

    if collapse:
        return _solve_collapsed(flows, weights, capacities)
    return _solve_flowwise(flows, weights, capacities)


def _solve_flowwise(
    flows: Sequence[FlowSpec],
    weights: List[Dict[str, float]],
    capacities: Mapping[str, float],
) -> Dict[str, float]:
    """Per-flow Gauss-Seidel (the reference implementation)."""
    pool_users: Dict[str, List[int]] = {}
    for idx, agg in enumerate(weights):
        for pool_id in agg:
            pool_users.setdefault(pool_id, []).append(idx)

    # Optimistic start: each flow alone on the cluster.
    rates: List[float] = []
    for idx, flow in enumerate(flows):
        bound = flow.cap if flow.cap is not None else float("inf")
        for pool_id, weight in weights[idx].items():
            bound = min(bound, capacities[pool_id] / weight)
        rates.append(bound)

    def sweep(damping: float) -> float:
        """One Gauss-Seidel sweep; returns the largest relative change."""
        max_change = 0.0
        for idx, flow in enumerate(flows):
            bound = flow.cap if flow.cap is not None else float("inf")
            for pool_id, weight in weights[idx].items():
                others = [
                    weights[j][pool_id] * rates[j]
                    for j in pool_users[pool_id]
                    if j != idx
                ]
                level = _hungry_level(others, capacities[pool_id])
                bound = min(bound, level / weight)
            if bound == float("inf"):  # pragma: no cover - FlowSpec forbids
                raise SimulationError(f"flow {flow.flow_id!r} is unbounded")
            updated = damping * rates[idx] + (1.0 - damping) * bound
            max_change = max(
                max_change, abs(updated - rates[idx]) / max(rates[idx], _EPS)
            )
            rates[idx] = updated
        return max_change

    converged = False
    residual = math.inf
    for _ in range(_MAX_ITER):
        residual = sweep(damping=0.0)
        if residual <= _REL_TOL:
            converged = True
            break
    if not converged:
        # The undamped iteration can (rarely) oscillate between two points;
        # a short damped phase settles it onto the same fixed point.
        for _ in range(_MAX_ITER):
            residual = sweep(damping=0.5)
            if residual <= _REL_TOL_DAMPED:
                converged = True
                break
    if not converged:
        raise _nonconvergence(residual, len(flows), 0.5, _REL_TOL_DAMPED)

    final = [max(r, 0.0) for r in rates]
    _repair_feasible(final, weights, [1] * len(flows), pool_users, capacities)
    return {flow.flow_id: final[idx] for idx, flow in enumerate(flows)}


def _solve_collapsed(
    flows: Sequence[FlowSpec],
    weights: List[Dict[str, float]],
    capacities: Mapping[str, float],
) -> Dict[str, float]:
    """Gauss-Seidel over equivalence classes of identical flows.

    Flows with the same aggregated ``(pool, weight)`` signature and the same
    cap are interchangeable: the max-min-fair allocation is unique and
    invariant under permuting them, so they share one rate.  Each class
    carries its multiplicity into the water-level computation (a class of
    ``m`` flows contributes ``m`` demanders to every pool it uses).
    """
    class_of_key: Dict[Tuple, int] = {}
    member_map: Dict[Tuple, List[int]] = {}
    for idx, flow in enumerate(flows):
        key = (flow.cap, tuple(sorted(weights[idx].items())))
        member_map.setdefault(key, []).append(idx)

    # Canonical class order (independent of flow arrival order): two calls
    # presenting the same *multiset* of flows perform bit-identical sweeps.
    # This matters to the engine — symmetric cluster nodes must converge to
    # float-identical rates so their completion deadlines coincide exactly.
    def class_order(key: Tuple):
        return class_sort_key(*key)

    members: List[List[int]] = []
    for key in sorted(member_map, key=class_order):
        class_of_key[key] = len(members)
        members.append(member_map[key])

    n_classes = len(members)
    cls_weights = [weights[group[0]] for group in members]
    cls_caps = [flows[group[0]].cap for group in members]
    mult = [len(group) for group in members]

    pool_users: Dict[str, List[int]] = {}
    for ci, agg in enumerate(cls_weights):
        for pool_id in agg:
            pool_users.setdefault(pool_id, []).append(ci)

    # Optimistic start: each class's flows alone on the cluster.
    rates: List[float] = []
    for ci in range(n_classes):
        bound = cls_caps[ci] if cls_caps[ci] is not None else float("inf")
        for pool_id, weight in cls_weights[ci].items():
            bound = min(bound, capacities[pool_id] / weight)
        rates.append(bound)

    def sweep(damping: float) -> float:
        """One class-level sweep; returns the largest relative change."""
        max_change = 0.0
        for ci in range(n_classes):
            bound = cls_caps[ci] if cls_caps[ci] is not None else float("inf")
            for pool_id, weight in cls_weights[ci].items():
                others: List[Tuple[float, int]] = []
                for cj in pool_users[pool_id]:
                    if cj != ci:
                        others.append((cls_weights[cj][pool_id] * rates[cj], mult[cj]))
                level = _hungry_level_grouped(
                    others, capacities[pool_id], hungry=mult[ci]
                )
                bound = min(bound, level / weight)
            if bound == float("inf"):  # pragma: no cover - FlowSpec forbids
                raise SimulationError(
                    f"flow {flows[members[ci][0]].flow_id!r} is unbounded"
                )
            updated = damping * rates[ci] + (1.0 - damping) * bound
            max_change = max(
                max_change, abs(updated - rates[ci]) / max(rates[ci], _EPS)
            )
            rates[ci] = updated
        return max_change

    converged = False
    residual = math.inf
    for _ in range(_MAX_ITER):
        residual = sweep(damping=0.0)
        if residual <= _REL_TOL_COLLAPSED:
            converged = True
            break
    if not converged:
        for _ in range(_MAX_ITER):
            residual = sweep(damping=0.5)
            if residual <= _REL_TOL_COLLAPSED_DAMPED:
                converged = True
                break
    if not converged:
        raise _nonconvergence(
            residual, n_classes, 0.5, _REL_TOL_COLLAPSED_DAMPED
        )

    final = [max(r, 0.0) for r in rates]
    _repair_feasible(final, cls_weights, mult, pool_users, capacities)
    result: Dict[str, float] = {}
    for ci, group in enumerate(members):
        for idx in group:
            result[flows[idx].flow_id] = final[ci]
    return result


def pool_utilisation(
    flows: Sequence[FlowSpec],
    rates: Mapping[str, float],
    capacities: Mapping[str, float],
) -> Dict[str, float]:
    """Utilisation ``p_X`` of every pool under the given rates.

    This is the quantity the paper reports in the Fig. 4 walk-through
    (e.g. "the disk utilisation is 20 %, the network utilisation is 100 %").
    """
    used: Dict[str, float] = {pool_id: 0.0 for pool_id in capacities}
    for flow in flows:
        rate = rates[flow.flow_id]
        for pool_id, weight in flow.demands:
            used[pool_id] += rate * weight
    return {pool_id: used[pool_id] / capacities[pool_id] for pool_id in capacities}
