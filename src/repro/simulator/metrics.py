"""Derived measurements over simulation traces.

The paper's evaluation compares model output against specific statistics of
the measured traces — "we use the median execution time of tasks as the
ground truth in all the evaluations" (§V-B) — and reports per-stage
break-downs and per-state task times.  This module computes those statistics.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.mapreduce.stage import StageKind
from repro.simulator.trace import SimulationResult, StateTrace, TaskTrace


def task_durations(
    result: SimulationResult,
    job: str,
    kind: StageKind,
    substage: Optional[str] = None,
    include_overhead: bool = False,
) -> List[float]:
    """Durations of all tasks of a job stage (optionally one sub-stage).

    Args:
        result: the trace.
        job: job name.
        kind: MAP or REDUCE.
        substage: restrict to one sub-stage name ("map", "shuffle",
            "reduce", "merge"); None takes the whole task.
        include_overhead: count the container-startup overhead in whole-task
            durations (ignored when ``substage`` is given).
    """
    out: List[float] = []
    if substage is None and hasattr(result, "durations_array"):
        # Columnar traces answer whole-task durations straight from the
        # trace columns — same floats, same canonical order — without
        # materialising a TaskTrace per task.  Sub-stage queries still go
        # through the objects (sub-stage splits are not columnised).
        out = result.durations_array(job, kind, include_overhead).tolist()
    else:
        for task in result.tasks_of(job, kind):
            if substage is not None:
                d = task.substage_duration(substage)
                if d is not None:
                    out.append(d)
            else:
                out.append(
                    task.duration if include_overhead else task.work_duration
                )
    if not out:
        raise SimulationError(
            f"no task durations for {job!r}/{kind}"
            + (f"/{substage!r}" if substage else "")
        )
    return out


def median_task_time(
    result: SimulationResult,
    job: str,
    kind: StageKind,
    substage: Optional[str] = None,
) -> float:
    """The paper's ground-truth statistic: the median task execution time."""
    return float(statistics.median(task_durations(result, job, kind, substage)))


def mean_task_time(
    result: SimulationResult,
    job: str,
    kind: StageKind,
    substage: Optional[str] = None,
) -> float:
    return float(statistics.fmean(task_durations(result, job, kind, substage)))


def stage_duration(result: SimulationResult, job: str, kind: StageKind) -> float:
    return result.stage(job, kind).duration


def tasks_in_state(
    result: SimulationResult,
    state: StateTrace,
    job: str,
    kind: StageKind,
    strict: bool = False,
) -> List[TaskTrace]:
    """Tasks of a job stage attributed to a state.

    ``strict=False`` attributes a task by its midpoint; ``strict=True``
    keeps only tasks that ran *entirely* inside the state, which excludes
    wave-boundary stragglers whose contention conditions straddle two states
    (the clean per-state measurement Table II needs).
    """
    out = []
    tol = 1e-6
    for task in result.tasks_of(job, kind):
        if strict:
            if (
                task.t_start >= state.t_start - tol
                and task.t_end <= state.t_end + tol
            ):
                out.append(task)
        else:
            mid = 0.5 * (task.t_start + task.t_end)
            if state.t_start <= mid < state.t_end:
                out.append(task)
    return out


def steady_state_tasks(
    result: SimulationResult, state: StateTrace, job: str, kind: StageKind
) -> List[TaskTrace]:
    """Tasks fully inside ``state`` that were in flight at its midpoint.

    This is the clean per-state sample: fully-inside alone over-represents
    the stage-drain tail (the last tasks run under lighter contention than
    the state's steady regime), while midpoint attribution admits tasks
    straddling two allocation regimes.
    """
    mid = 0.5 * (state.t_start + state.t_end)
    return [
        t
        for t in tasks_in_state(result, state, job, kind, strict=True)
        if t.t_start <= mid < t.t_end
    ]


def median_task_time_in_state(
    result: SimulationResult,
    state: StateTrace,
    job: str,
    kind: StageKind,
    substage: Optional[str] = None,
    strict: bool = False,
    min_samples: int = 1,
    steady: bool = False,
) -> Optional[float]:
    """Median task (or sub-stage) time among tasks attributed to ``state``.

    Returns None when fewer than ``min_samples`` tasks qualify — the caller
    decides whether that's an error (Table II needs a value per state) or
    simply an empty cell.  Attribution modes fall back in order of
    strictness: ``steady`` (fully inside + in flight at the midpoint) ->
    ``strict`` (fully inside) -> midpoint.
    """
    candidates: List[TaskTrace] = []
    if steady:
        candidates = steady_state_tasks(result, state, job, kind)
    if (steady and len(candidates) < min_samples) or (strict and not steady):
        candidates = tasks_in_state(result, state, job, kind, strict=True)
    if (strict or steady) and len(candidates) < min_samples:
        candidates = tasks_in_state(result, state, job, kind, strict=False)
    if not (strict or steady):
        candidates = tasks_in_state(result, state, job, kind, strict=False)
    durations: List[float] = []
    for task in candidates:
        if substage is not None:
            d = task.substage_duration(substage)
            if d is not None:
                durations.append(d)
        else:
            durations.append(task.work_duration)
    if len(durations) < min_samples:
        return None
    return float(statistics.median(durations))


def observed_parallelism(
    result: SimulationResult, job: str, kind: StageKind, at_time: float
) -> int:
    """Number of tasks of a job stage in flight at a given instant."""
    count = 0
    for task in result.tasks_of(job, kind):
        if task.t_start <= at_time < task.t_end:
            count += 1
    return count


def average_parallelism(
    result: SimulationResult, job: str, kind: StageKind
) -> float:
    """Time-averaged degree of parallelism over the stage's span.

    Computed as total task-seconds divided by stage duration — the quantity
    the model's ``Delta_i`` estimate should match in steady state.
    """
    stage = result.stage(job, kind)
    if stage.duration <= 0:
        return 0.0
    task_seconds = sum(t.duration for t in result.tasks_of(job, kind))
    return task_seconds / stage.duration


def state_summary(result: SimulationResult) -> List[Dict]:
    """One row per workflow state: interval, running stages, per-stage medians."""
    rows: List[Dict] = []
    for state in result.states:
        entry: Dict = {
            "state": state.index,
            "t_start": state.t_start,
            "t_end": state.t_end,
            "duration": state.duration,
            "running": sorted((job, kind.value) for job, kind in state.running),
            "median_task_times": {},
        }
        for job, kind in sorted(state.running):
            med = median_task_time_in_state(result, state, job, kind)
            if med is not None:
                entry["median_task_times"][f"{job}/{kind.value}"] = med
        rows.append(entry)
    return rows


# Relative floor substituted for a degenerate (zero / non-finite) sigma in
# fit_normal: wide enough to keep Phi^-1-based wave arithmetic finite, narrow
# enough that the fitted normal still behaves as "all tasks take mu".
_DEGENERATE_SIGMA = 1e-9


def fit_normal(durations: List[float]) -> Tuple[float, float]:
    """(mu, sigma) of a normal fit to task durations (Alg2-Normal input).

    A single sample or a constant-duration stage yields ``sigma == 0``;
    consumers of the fit divide by sigma (order-statistic wave estimates),
    so the degenerate case substitutes a tiny floor relative to ``mu``
    instead of handing back an exact zero.
    """
    if not durations:
        raise SimulationError("cannot fit a distribution to zero durations")
    arr = np.asarray(durations, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise SimulationError(f"non-finite task durations: {durations!r}")
    mu = float(arr.mean())
    sigma = float(arr.std(ddof=0))
    if not (sigma > 0.0):
        sigma = _DEGENERATE_SIGMA * max(abs(mu), 1.0)
    return mu, sigma
