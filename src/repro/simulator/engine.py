"""Fluid discrete-event simulation of a DAG workflow on a cluster.

This engine is the reproduction's *ground truth* — the stand-in for the
paper's 11-node Hadoop testbed.  It executes a :class:`~repro.dag.Workflow`
mechanistically:

* jobs arrive when their DAG parents complete (Definition 1);
* a YARN-like placer (:class:`~repro.scheduler.yarn.YarnPlacer`) grants
  containers to pending tasks under DRF with memory-only admission;
* every running task executes its sub-stages (from
  :func:`~repro.mapreduce.phases.build_task_substages`) as fluid flows whose
  rates are re-solved by progressive-filling max-min sharing
  (:func:`~repro.simulator.sharing.solve_max_min`) each time the set of
  active flows changes;
* per-task startup overheads, task waves, data skew and stage barriers all
  emerge from the mechanics rather than being asserted.

Crucially, the engine shares **no estimation code** with the BOE model or
Algorithm 1 — only the workload description.  Model accuracy measured
against these traces is therefore a genuine comparison, mirroring the
paper's model-vs-cluster evaluation.

Two event loops are provided, selected by ``SimulationConfig.engine``:

* ``"fast"`` (default) keeps per-event work proportional to the flows a
  state change actually affects.  Progress is *materialised lazily*: a run
  stores ``(progress, t_base, rate)`` and its true progress at time ``t`` is
  ``progress + (t - t_base) * rate``, so untouched flows cost nothing when
  the clock advances.  Every running sub-stage owns one entry in a
  completion-time heap; entries are invalidated (lazy cancellation) only
  when the run's node is re-solved.  The sharing problems themselves
  collapse symmetric flows into equivalence classes
  (:func:`~repro.simulator.sharing.solve_max_min` with ``collapse=True``).
* ``"reference"`` is the historical loop that rescans and advances every
  active flow on every event — O(active flows) per event.  It is retained
  as the oracle: ``benchmarks/bench_engine_scale.py`` and
  ``tests/simulator/test_engine_parity.py`` assert the two produce the same
  traces, so every accuracy result in EXPERIMENTS.md is preserved.
* ``"columnar"`` (:mod:`repro.simulator.columnar`) re-hosts the fast loop's
  state in flat numpy arrays — per-run progress/rate/deadline columns keyed
  by slot index, class-level sharing via
  :func:`~repro.simulator.sharing.solve_max_min_classes`, and a deadline
  heap of index *cohorts* instead of objects — for million-task DAGs.
  ``tests/simulator/test_columnar_parity.py`` pins it against this engine.
"""

from __future__ import annotations

import logging
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.resources import Resource, ResourceVector
from repro.dag.workflow import Workflow
from repro.errors import SchedulingError, SimulationError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.phases import SubStageSpec, build_task_substages
from repro.mapreduce.stage import StageKind
from repro.mapreduce.task import NO_SKEW, SkewModel, TaskSpec, build_task_specs
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.simulator.failures import NO_FAILURES, FailureModel
from repro.scheduler.container import container_for
from repro.scheduler.yarn import YarnPlacer
from repro.simulator.events import EventQueue
from repro.simulator.sharing import FlowSpec, solve_max_min
from repro.simulator.trace import (
    SimulationResult,
    StageTrace,
    StateTrace,
    SubStageTrace,
    TaskTrace,
)

_EPS = 1e-9
_TIME_TOL = 1e-7

logger = logging.getLogger(__name__)

#: Recognised values of :attr:`SimulationConfig.engine`.
ENGINES = ("fast", "reference", "columnar")


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run.

    Attributes:
        policy: scheduler policy ("drf", "fifo", "fair").
        skew: per-task input-size skew model.
        enforce_vcores: strict DRF admission (default off = stock YARN).
        failures: task-attempt failure injection (fault tolerance).
        max_iterations: hard stop against engine bugs.
        engine: event-loop implementation — ``"fast"`` (lazy progress,
            completion heap, collapsed sharing; the default),
            ``"reference"`` (the historical rescan-everything loop, kept as
            the trace-fidelity oracle) or ``"columnar"`` (numpy-backed flat
            state for million-task DAGs, trace-pinned against ``"fast"``).
    """

    policy: str = "drf"
    skew: SkewModel = NO_SKEW
    enforce_vcores: bool = False
    failures: FailureModel = NO_FAILURES
    max_iterations: int = 5_000_000
    engine: str = "fast"


class _RunState:
    """Mutable execution state of one launched task."""

    __slots__ = (
        "spec",
        "node",
        "container",
        "substages",
        "stage_idx",
        "progress",
        "active",
        "t_launch",
        "t_work_start",
        "substage_traces",
        "flow_cache",
        "attempt",
        "fail_substage",
        "fail_fraction",
        "rate",
        "t_base",
        "deadline_token",
    )

    def __init__(
        self,
        spec: TaskSpec,
        node: int,
        container: ResourceVector,
        substages: List[SubStageSpec],
        t_launch: float,
    ):
        self.spec = spec
        self.node = node
        self.container = container
        self.substages = substages
        self.stage_idx = 0
        self.progress = 0.0
        self.active = False  # False while paying the startup overhead
        self.t_launch = t_launch
        self.t_work_start = t_launch
        self.substage_traces: List[SubStageTrace] = []
        self.flow_cache: Optional[FlowSpec] = None
        self.attempt = 1
        # Failure injection: the substage index and intra-substage progress
        # fraction at which this attempt dies (None = attempt succeeds).
        self.fail_substage: Optional[int] = None
        self.fail_fraction = 1.0
        # Fast-engine bookkeeping: the solved progress rate in effect since
        # ``t_base`` (lazy materialisation) and the token of this run's live
        # entry in the completion-time heap (None = no entry).
        self.rate = 0.0
        self.t_base = t_launch
        self.deadline_token: Optional[int] = None

    @property
    def current(self) -> SubStageSpec:
        return self.substages[self.stage_idx]

    def flow_id(self) -> str:
        return f"{self.spec.task_id}/{self.stage_idx}"

    def build_flow(self) -> FlowSpec:
        if self.flow_cache is not None:
            return self.flow_cache
        sub = self.current
        demands: List[Tuple[str, float]] = []
        cap: Optional[float] = None
        for op in sub.ops:
            pool = _pool_id(op.resource, self.node)
            demands.append((pool, op.amount))
            if op.per_flow_cap is not None:
                op_cap = op.per_flow_cap / op.amount
                cap = op_cap if cap is None else min(cap, op_cap)
        self.flow_cache = FlowSpec(self.flow_id(), tuple(demands), cap)
        return self.flow_cache


class _JobState:
    """Mutable execution state of one job (bookkeeping per stage, because
    slow-start lets the map and reduce stages overlap)."""

    __slots__ = (
        "job",
        "arrived",
        "pending",
        "running",
        "completed",
        "total",
        "stage_open",
        "stage_bounds",
        "done",
        "maps_completed",
        "reduces_opened",
    )

    def __init__(self, job: MapReduceJob):
        self.job = job
        self.arrived = False
        self.pending: Dict[StageKind, Deque[TaskSpec]] = {}
        self.running: Dict[StageKind, int] = {}
        self.completed: Dict[StageKind, int] = {}
        self.total: Dict[StageKind, int] = {}
        self.stage_open: Dict[StageKind, bool] = {}
        self.stage_bounds: Dict[StageKind, List[float]] = {}
        self.done = False
        self.maps_completed = 0
        self.reduces_opened = False

    def open_kinds(self):
        return [k for k, is_open in self.stage_open.items() if is_open]

    @property
    def map_stage_open(self) -> bool:
        return self.stage_open.get(StageKind.MAP, False)


def _pool_id(resource: Resource, node: int) -> str:
    if resource is Resource.CPU:
        return f"cpu:{node}"
    if resource is Resource.DISK:
        return f"disk:{node}"
    if resource is Resource.NETWORK:
        return f"net:{node}"
    raise SimulationError(f"{resource} is not a throughput pool")


class Simulator:
    """Executes one workflow on one cluster and returns its trace."""

    def __init__(
        self,
        cluster: Cluster,
        workflow: Workflow,
        config: SimulationConfig = SimulationConfig(),
    ):
        if config.engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {config.engine!r}; pick one of {ENGINES}"
            )
        self._cluster = cluster
        self._workflow = workflow
        self._config = config
        self._fast = config.engine == "fast"
        self._placer = YarnPlacer(
            cluster,
            policy=config.policy,
            enforce_vcores=config.enforce_vcores,
            fast=config.engine != "reference",
        )
        node = cluster.node
        self._pools: Dict[str, float] = {}
        for i in range(cluster.workers):
            self._pools[f"cpu:{i}"] = float(node.cores)
            self._pools[f"disk:{i}"] = node.disk_mb_s
            self._pools[f"net:{i}"] = node.network_mb_s

        # Per-node pool sub-maps: flows only ever touch their own node's
        # pools, so the sharing problem decomposes by node and only nodes
        # whose flow set changed need re-solving (a large speed-up).
        self._node_pools: List[Dict[str, float]] = [
            {
                f"cpu:{i}": float(node.cores),
                f"disk:{i}": node.disk_mb_s,
                f"net:{i}": node.network_mb_s,
            }
            for i in range(cluster.workers)
        ]
        self._rates: Dict[str, float] = {}
        self._dirty_nodes = set(range(cluster.workers))

        self._jobs: Dict[str, _JobState] = {
            j.name: _JobState(j) for j in workflow.jobs
        }
        self._events = EventQueue()
        self._now = 0.0
        self._runs: Dict[str, _RunState] = {}  # task_id -> run (launched, not finished)
        self._attempts: Dict[str, int] = {}  # task_id -> attempts launched
        self._first_launch: Dict[str, float] = {}  # task_id -> first attempt's launch
        self._failed_attempts: List[Tuple[str, int, float]] = []
        self._finished_tasks: List[TaskTrace] = []
        self._stage_traces: List[StageTrace] = []
        self._states: List[StateTrace] = []
        self._open_set: FrozenSet[Tuple[str, StageKind]] = frozenset()
        self._state_start = 0.0

        # Fast-engine structures: runs grouped by node (insertion-ordered so
        # symmetric tasks tie-break like the reference loop's run dict), a
        # completion-time heap with lazy cancellation, and a memo of
        # sub-stage pipelines (identical tasks share one immutable spec
        # list instead of rebuilding it per launch).
        self._node_runs: List[Dict[str, _RunState]] = [
            {} for _ in range(cluster.workers)
        ]
        self._deadlines = EventQueue()
        self._substage_cache: Dict[
            Tuple[str, StageKind, float], List[SubStageSpec]
        ] = {}

        # Observability hooks resolve to None when disabled, so every hot-path
        # hook is a single predicated attribute test (the overhead budget in
        # benchmarks/bench_obs_overhead.py depends on this).  Spans/metrics
        # only *read* clocks and counts; no simulation arithmetic may ever
        # depend on them — instrumented runs stay bit-identical.
        tracer = get_tracer()
        metrics = get_metrics()
        self._otr = tracer if tracer.enabled else None
        self._state_span = None
        if metrics.enabled:
            self._ctr_launched = metrics.counter("sim.tasks_launched")
            self._ctr_failed = metrics.counter("sim.attempts_failed")
            self._ctr_solves = metrics.counter("sim.node_solves")
            self._ctr_events = metrics.counter("sim.events")
            self._ctr_deadlines = metrics.counter("sim.deadline_fires")
            self._ctr_sched = metrics.counter("sim.scheduler_decisions")
            self._hist_state = metrics.histogram("sim.state_duration_s")
        else:
            self._ctr_launched = None
            self._ctr_failed = None
            self._ctr_solves = None
            self._ctr_events = None
            self._ctr_deadlines = None
            self._ctr_sched = None
            self._hist_state = None

    # -- public API --------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the workflow to completion and return its trace."""
        if self._config.engine == "columnar" and type(self) is Simulator:
            # The columnar loop lives in its own subclass; hand this still
            # untouched simulation over to a fresh instance of it.
            from repro.simulator.columnar import ColumnarSimulator

            return ColumnarSimulator(
                self._cluster, self._workflow, self._config
            ).run()
        if self._otr is None:
            return self._run_engine()
        with self._otr.span(
            "sim.run",
            workflow=self._workflow.name,
            engine=self._config.engine,
            workers=self._cluster.workers,
        ) as span:
            result = self._run_engine()
            span.set(
                makespan_s=result.makespan,
                tasks=result.task_count,
                states=len(result.states),
                failed_attempts=len(result.failed_attempts),
            )
            return result

    def _run_engine(self) -> SimulationResult:
        if self._config.engine == "columnar":
            return self._run_columnar()  # type: ignore[attr-defined]
        return self._run_fast() if self._fast else self._run_reference()

    # -- reference event loop ----------------------------------------------------

    def _run_reference(self) -> SimulationResult:
        """The historical O(active flows)-per-event loop (trace oracle)."""
        for name in self._workflow.roots():
            self._arrive(name)
        self._schedule_pending()
        self._note_state_change()

        iterations = 0
        while True:
            iterations += 1
            if iterations > self._config.max_iterations:
                raise SimulationError(
                    f"simulation of {self._workflow.name!r} exceeded "
                    f"{self._config.max_iterations} iterations"
                )
            active = [
                r
                for r in self._runs.values()
                if r.active and not self._is_gated(r)
            ]
            if self._dirty_nodes:
                if self._ctr_solves is not None:
                    self._ctr_solves.inc(len(self._dirty_nodes))
                by_node: Dict[int, List[_RunState]] = {}
                for run in active:
                    if run.node in self._dirty_nodes:
                        by_node.setdefault(run.node, []).append(run)
                for node_idx in self._dirty_nodes:
                    node_runs = by_node.get(node_idx, [])
                    solved = solve_max_min(
                        [r.build_flow() for r in node_runs],
                        self._node_pools[node_idx],
                        collapse=False,
                    )
                    self._rates.update(solved)
                self._dirty_nodes.clear()
            rates = self._rates

            dt_complete = math.inf
            for run in active:
                rate = rates[run.flow_id()]
                if rate > _EPS:
                    target = self._shuffle_target(run)
                    if run.fail_substage == run.stage_idx:
                        target = min(target, run.fail_fraction)
                    dt_complete = min(
                        dt_complete, max(0.0, (target - run.progress)) / rate
                    )
            t_event = self._events.peek_time()
            t_next = min(
                self._now + dt_complete,
                t_event if t_event is not None else math.inf,
            )
            if t_next == math.inf:
                if self._runs or any(
                    not js.done for js in self._jobs.values()
                ):
                    self._raise_stall(active, rates)
                break

            dt = t_next - self._now
            for run in active:
                target = self._shuffle_target(run)
                run.progress = min(
                    target, run.progress + dt * rates[run.flow_id()]
                )
                if target < 1.0 and run.progress >= target - _EPS:
                    # Newly gated at the availability boundary: stop it from
                    # consuming bandwidth until more map output exists.
                    self._dirty_nodes.add(run.node)
            self._now = t_next

            for payload in self._events.pop_all_at(self._now, tol=_TIME_TOL):
                kind, task_id = payload
                if kind == "ready":
                    run = self._runs.get(task_id)
                    if run is not None:
                        run.active = True
                        run.t_work_start = self._now
                        self._dirty_nodes.add(run.node)

            for run in list(self._runs.values()):
                if not run.active:
                    continue
                if (
                    run.fail_substage == run.stage_idx
                    and run.progress >= run.fail_fraction - _EPS
                ):
                    self._kill_attempt(run)
                elif run.progress >= 1.0 - _EPS:
                    self._complete_substage(run)

            self._schedule_pending()
            self._note_state_change()

            if all(js.done for js in self._jobs.values()) and not self._runs:
                break

        if self._ctr_events is not None:
            self._ctr_events.inc(iterations)
        return self._build_result()

    # -- fast event loop ----------------------------------------------------------

    def _run_fast(self) -> SimulationResult:
        """Event loop with lazy progress and a completion-time heap.

        Per event, only the flows on *dirty* nodes are touched: their
        progress is materialised, their node's sharing problem re-solved
        (over equivalence classes) and their heap deadlines re-issued.
        Flows on clean nodes keep their piecewise-constant rates, so their
        stored deadlines stay exact — no rescan, no advancement.
        """
        for name in self._workflow.roots():
            self._arrive(name)
        self._schedule_pending()
        self._note_state_change()

        deadlines = self._deadlines
        events = self._events
        iterations = 0
        while True:
            iterations += 1
            if iterations > self._config.max_iterations:
                raise SimulationError(
                    f"simulation of {self._workflow.name!r} exceeded "
                    f"{self._config.max_iterations} iterations"
                )
            if self._dirty_nodes:
                if self._ctr_solves is not None:
                    self._ctr_solves.inc(len(self._dirty_nodes))
                for node_idx in sorted(self._dirty_nodes):
                    self._solve_node(node_idx)
                self._dirty_nodes.clear()

            t_deadline = deadlines.peek_time()
            t_event = events.peek_time()
            t_next = min(
                t_deadline if t_deadline is not None else math.inf,
                t_event if t_event is not None else math.inf,
            )
            if t_next == math.inf:
                if self._runs or any(
                    not js.done for js in self._jobs.values()
                ):
                    active = [
                        r
                        for r in self._runs.values()
                        if r.active and not self._is_gated(r)
                    ]
                    self._raise_stall(
                        active, {r.flow_id(): r.rate for r in active}
                    )
                break
            self._now = t_next

            # Fire every deadline inside its run's _EPS progress window of
            # t_next, not only exact matches.  The reference loop checks
            # ``progress >= target - _EPS`` for *all* runs at every event, so
            # a run within _EPS of its target completes at the current event
            # even if its own predicted instant is marginally later; a
            # deadline at t_d is that close exactly when
            # ``(t_d - now) * rate <= _EPS``.  Without this, symmetric waves
            # whose deadlines differ by ulp noise would complete at separate
            # micro-instants and the scheduler would see different batches.
            while True:
                head = deadlines.peek()
                if head is None:
                    break
                t_d, task_id = head
                run = self._runs.get(task_id)
                if run is None or run.deadline_token is None:
                    deadlines.pop()  # pragma: no cover - cancel() precedes removal
                    continue
                if (t_d - t_next) * run.rate > _EPS:
                    break
                deadlines.pop()
                self._fire_deadline(run)

            for payload in events.pop_all_at(t_next, tol=_TIME_TOL):
                kind, task_id = payload
                if kind == "ready":
                    run = self._runs.get(task_id)
                    if run is not None:
                        run.active = True
                        run.t_work_start = self._now
                        run.t_base = self._now
                        self._dirty_nodes.add(run.node)

            self._schedule_pending()
            self._note_state_change()

            if all(js.done for js in self._jobs.values()) and not self._runs:
                break

        if self._ctr_events is not None:
            self._ctr_events.inc(iterations)
        return self._build_result()

    def _solve_node(self, node_idx: int) -> None:
        """Re-share one dirty node and refresh its runs' heap deadlines."""
        now = self._now
        included: List[_RunState] = []
        for run in self._node_runs[node_idx].values():
            if not run.active:
                continue  # still paying the startup overhead
            target = self._shuffle_target(run)
            if run.rate > 0.0 and now > run.t_base:
                run.progress = min(
                    target, run.progress + (now - run.t_base) * run.rate
                )
            run.t_base = now
            if target < 1.0 and run.progress >= target - _EPS:
                # Gated at the availability boundary: excluded from the
                # share until more map output exists (rate pinned to zero so
                # later materialisations add no progress).
                run.rate = 0.0
                self._cancel_deadline(run)
                continue
            included.append(run)
        solved = solve_max_min(
            [r.build_flow() for r in included], self._node_pools[node_idx]
        )
        for run in included:
            run.rate = solved[run.flow_id()]
            self._push_deadline(run)

    def _push_deadline(self, run: _RunState) -> None:
        """(Re-)issue the heap entry for this run's next decision point."""
        self._cancel_deadline(run)
        if run.rate <= _EPS:
            return  # starved: some future re-share must revive it
        target = self._shuffle_target(run)
        if run.fail_substage == run.stage_idx:
            target = min(target, run.fail_fraction)
        when = self._now + max(0.0, target - run.progress) / run.rate
        run.deadline_token = self._deadlines.push(when, run.spec.task_id)

    def _cancel_deadline(self, run: _RunState) -> None:
        if run.deadline_token is not None:
            self._deadlines.cancel(run.deadline_token)
            run.deadline_token = None

    def _fire_deadline(self, run: _RunState) -> None:
        """A run reached its predicted decision point: materialise and act."""
        if self._ctr_deadlines is not None:
            self._ctr_deadlines.inc()
        run.deadline_token = None
        target = self._shuffle_target(run)
        if run.rate > 0.0 and self._now > run.t_base:
            run.progress = min(
                target, run.progress + (self._now - run.t_base) * run.rate
            )
        run.t_base = self._now
        if (
            run.fail_substage == run.stage_idx
            and run.progress >= run.fail_fraction - _EPS
        ):
            self._kill_attempt(run)
        elif run.progress >= 1.0 - _EPS:
            self._complete_substage(run)
        elif target < 1.0 and run.progress >= target - _EPS:
            # Newly gated: release its bandwidth back to the node.
            run.rate = 0.0
            self._dirty_nodes.add(run.node)
        else:
            # The target moved under us (e.g. more map output appeared at
            # this very instant): let the next re-share re-issue a deadline.
            self._dirty_nodes.add(run.node)

    # -- job / stage lifecycle -----------------------------------------------------

    def _arrive(self, name: str) -> None:
        js = self._jobs[name]
        if js.arrived:
            raise SimulationError(f"job {name!r} arrived twice")
        js.arrived = True
        self._open_stage(js, StageKind.MAP)

    def _open_stage(self, js: _JobState, kind: StageKind) -> None:
        specs = build_task_specs(js.job, kind, self._config.skew)
        # A deque, not a list: _launch consumes from the front and retries
        # re-queue at the back, which is O(n) total instead of pop(0)'s O(n²)
        # — material once stages hold 10⁵+ pending tasks.
        js.pending[kind] = deque(specs)
        js.running[kind] = 0
        js.completed[kind] = 0
        js.total[kind] = len(specs)
        js.stage_open[kind] = True
        js.stage_bounds[kind] = [self._now, self._now]
        if kind is StageKind.REDUCE:
            js.reduces_opened = True
        if js.total[kind] == 0:
            self._close_stage(js, kind)

    def _close_stage(self, js: _JobState, kind: StageKind) -> None:
        js.stage_open[kind] = False
        js.stage_bounds[kind][1] = self._now
        self._stage_traces.append(
            StageTrace(
                job=js.job.name,
                kind=kind,
                t_start=js.stage_bounds[kind][0],
                t_end=self._now,
                num_tasks=js.job.num_tasks(kind),
            )
        )
        if kind is StageKind.MAP and not js.job.is_map_only:
            # With slow-start < 1 the reduce stage already opened while the
            # maps were running; its gated shuffles are free to drain now.
            if not js.reduces_opened:
                self._open_stage(js, StageKind.REDUCE)
            return
        if kind is StageKind.REDUCE or js.job.is_map_only:
            js.done = True
            self._release_children(js.job.name)

    def _release_children(self, name: str) -> None:
        for child in sorted(self._workflow.children(name)):
            if self._jobs[child].arrived:
                continue
            if all(self._jobs[p].done for p in self._workflow.parents(child)):
                self._arrive(child)

    # -- task lifecycle --------------------------------------------------------------

    def _task_substages(self, js: _JobState, spec: TaskSpec) -> List[SubStageSpec]:
        """Sub-stage pipeline for one task.

        Identical tasks (same job, kind and input size — the overwhelmingly
        common case without skew) share one immutable spec list; the memo is
        only consulted by the fast engine so the reference loop stays the
        historical code path.
        """
        if not self._fast:
            return build_task_substages(
                js.job,
                spec.kind,
                task_input_mb=spec.input_mb if spec.input_mb > 0 else None,
                remote_fraction=self._cluster.remote_fraction,
            )
        key = (js.job.name, spec.kind, spec.input_mb)
        substages = self._substage_cache.get(key)
        if substages is None:
            substages = build_task_substages(
                js.job,
                spec.kind,
                task_input_mb=spec.input_mb if spec.input_mb > 0 else None,
                remote_fraction=self._cluster.remote_fraction,
            )
            self._substage_cache[key] = substages
        return substages

    def _launch(self, js: _JobState, node: int, kind: StageKind) -> None:
        spec = js.pending[kind].popleft()
        container = container_for(js.job, spec.kind)
        substages = self._task_substages(js, spec)
        run = _RunState(spec, node, container, substages, self._now)
        attempt = self._attempts.get(spec.task_id, 0) + 1
        self._attempts[spec.task_id] = attempt
        self._first_launch.setdefault(spec.task_id, self._now)
        self._plan_failure(run, attempt=attempt)
        if self._ctr_launched is not None:
            self._ctr_launched.inc()
        self._runs[spec.task_id] = run
        self._node_runs[node][spec.task_id] = run
        self._dirty_nodes.add(node)
        js.running[kind] += 1
        overhead = js.job.config.task_overhead_s
        if overhead > 0:
            self._events.push(self._now + overhead, ("ready", spec.task_id))
        else:
            run.active = True

    def _plan_failure(self, run: _RunState, attempt: int) -> None:
        """Decide whether (and where) this attempt dies, deterministically."""
        run.attempt = attempt
        model = self._config.failures
        if not model.enabled:
            return
        fails, fail_at = model.draw(run.spec.task_id, attempt)
        if not fails:
            run.fail_substage = None
            run.fail_fraction = 1.0
            return
        # Map the whole-task death point onto a (substage, fraction) pair,
        # weighting substages by their total operation amounts.
        weights = [sum(op.amount for op in sub.ops) for sub in run.substages]
        total = sum(weights) or 1.0
        cumulative = 0.0
        for idx, weight in enumerate(weights):
            share = weight / total
            if share <= 0:
                continue
            if fail_at <= cumulative + share or idx == len(weights) - 1:
                run.fail_substage = idx
                run.fail_fraction = min(0.999, (fail_at - cumulative) / share)
                return
            cumulative += share

    def _kill_attempt(self, run: _RunState) -> None:
        """A failed attempt: release the container and re-queue the task."""
        spec = run.spec
        model = self._config.failures
        if run.attempt >= model.max_attempts:
            raise SimulationError(
                f"task {spec.task_id} failed {run.attempt} attempts "
                f"(limit {model.max_attempts}); job aborted"
            )
        self._rates.pop(run.flow_id(), None)
        self._cancel_deadline(run)
        self._dirty_nodes.add(run.node)
        del self._runs[spec.task_id]
        self._node_runs[run.node].pop(spec.task_id, None)
        self._placer.release(spec.job_name, run.node, run.container)
        js = self._jobs[spec.job_name]
        js.running[spec.kind] -= 1
        # Re-queue at the back: the scheduler hands the retry a fresh
        # container on its next pass, with a new startup overhead.
        js.pending[spec.kind].append(spec)
        if self._ctr_failed is not None:
            self._ctr_failed.inc()
        self._failed_attempts.append((spec.task_id, run.attempt, self._now))

    def _complete_substage(self, run: _RunState) -> None:
        run.substage_traces.append(
            SubStageTrace(run.current.name, run.t_work_start, self._now)
        )
        self._rates.pop(run.flow_id(), None)
        self._cancel_deadline(run)
        self._dirty_nodes.add(run.node)
        run.stage_idx += 1
        run.progress = 0.0
        run.rate = 0.0
        run.flow_cache = None
        run.t_work_start = self._now
        run.t_base = self._now
        if run.stage_idx < len(run.substages):
            return
        # Task finished.
        spec = run.spec
        del self._runs[spec.task_id]
        self._node_runs[run.node].pop(spec.task_id, None)
        self._placer.release(spec.job_name, run.node, run.container)
        self._finished_tasks.append(
            TaskTrace(
                job=spec.job_name,
                kind=spec.kind,
                index=spec.index,
                node=run.node,
                input_mb=spec.input_mb,
                t_ready=self._first_launch.pop(spec.task_id, run.t_launch),
                t_start=run.t_launch,
                t_end=self._now,
                substages=tuple(run.substage_traces),
            )
        )
        js = self._jobs[spec.job_name]
        js.running[spec.kind] -= 1
        js.completed[spec.kind] += 1
        if spec.kind is StageKind.MAP:
            js.maps_completed += 1
            self._on_map_completed(js)
        if (
            js.completed[spec.kind] >= js.total[spec.kind]
            and not js.pending[spec.kind]
            and js.running[spec.kind] == 0
        ):
            self._close_stage(js, spec.kind)

    def _on_map_completed(self, js: _JobState) -> None:
        """Slow-start bookkeeping after one of ``js``'s maps finishes."""
        cfg = js.job.config
        if js.job.is_map_only:
            return
        if not js.reduces_opened and cfg.slowstart < 1.0:
            threshold = math.ceil(cfg.slowstart * js.job.num_map_tasks)
            if js.maps_completed >= threshold:
                self._open_stage(js, StageKind.REDUCE)
        if js.reduces_opened and js.map_stage_open:
            # Gated shuffles may now drain further; force a re-solve on the
            # nodes hosting them so freed targets take effect.
            for run in self._runs.values():
                if run.spec.job_name == js.job.name and run.spec.kind is StageKind.REDUCE:
                    self._dirty_nodes.add(run.node)

    # -- scheduling --------------------------------------------------------------------

    def _schedule_pending(self) -> None:
        """Grant free capacity.

        Each job offers its map queue before its reduce queue (Hadoop
        prioritises maps *within* an application — that is how slow-started
        reduces coexist with the remaining map waves), while the cluster
        policy arbitrates between jobs on every grant.
        """
        kinds = (StageKind.MAP, StageKind.REDUCE)
        requests: Dict[str, List[Tuple[ResourceVector, int]]] = {}
        for name, js in self._jobs.items():
            if not js.arrived or js.done:
                continue
            queues = [
                (container_for(js.job, kind), len(js.pending.get(kind, [])))
                if js.stage_open.get(kind, False)
                else (container_for(js.job, kind), 0)
                for kind in kinds
            ]
            if any(count for _, count in queues):
                requests[name] = queues
        if not requests:
            return
        grants = 0
        for name, node, queue_idx in self._placer.assign_queues(requests):
            self._launch(self._jobs[name], node, kinds[queue_idx])
            grants += 1
        if self._ctr_sched is not None and grants:
            self._ctr_sched.inc(grants)

    # -- state tracking -------------------------------------------------------------------

    def _current_open_set(self) -> FrozenSet[Tuple[str, StageKind]]:
        out: Set[Tuple[str, StageKind]] = set()
        for name, js in self._jobs.items():
            if js.arrived and not js.done:
                for kind in js.open_kinds():
                    out.add((name, kind))
        return frozenset(out)

    def _note_state_change(self) -> None:
        current = self._current_open_set()
        if current == self._open_set:
            return
        recorded = False
        if self._now > self._state_start + _TIME_TOL and self._open_set:
            self._states.append(
                StateTrace(
                    index=len(self._states) + 1,
                    t_start=self._state_start,
                    t_end=self._now,
                    running=self._open_set,
                )
            )
            recorded = True
            if self._hist_state is not None:
                self._hist_state.observe(self._now - self._state_start)
        if self._otr is not None:
            self._roll_state_span(current, recorded)
        self._open_set = current
        self._state_start = self._now

    def _roll_state_span(self, current: FrozenSet[Tuple[str, StageKind]], recorded: bool) -> None:
        """Close the wall-clock span of the ending state, open the next one.

        Spans measure where the *model's own* time goes per simulated state;
        ``recorded=False`` marks zero-duration blips that produced no
        :class:`StateTrace`.
        """
        if self._state_span is not None:
            self._otr.finish(
                self._state_span, sim_t_end=self._now, recorded=recorded
            )
            self._state_span = None
        if current:
            self._state_span = self._otr.begin(
                "sim.state",
                index=len(self._states) + 1,
                sim_t_start=self._now,
                running=",".join(
                    sorted(f"{j}/{k.value}" for j, k in current)
                ),
            )

    def _close_state(self) -> None:
        if self._open_set and self._now > self._state_start + _TIME_TOL:
            self._states.append(
                StateTrace(
                    index=len(self._states) + 1,
                    t_start=self._state_start,
                    t_end=self._now,
                    running=self._open_set,
                )
            )
            if self._hist_state is not None:
                self._hist_state.observe(self._now - self._state_start)
        if self._otr is not None and self._state_span is not None:
            self._otr.finish(self._state_span, sim_t_end=self._now, recorded=True)
            self._state_span = None

    # -- result assembly ------------------------------------------------------------------

    def _build_result(self) -> SimulationResult:
        self._close_state()
        logger.debug(
            "simulated %s: makespan=%.3fs tasks=%d states=%d failures=%d",
            self._workflow.name,
            self._now,
            len(self._finished_tasks),
            len(self._states),
            len(self._failed_attempts),
        )
        return SimulationResult(
            workflow_name=self._workflow.name,
            makespan=self._now,
            tasks=sorted(
                self._finished_tasks, key=lambda t: (t.t_start, t.job, t.index)
            ),
            stages=sorted(self._stage_traces, key=lambda s: (s.t_start, s.job)),
            states=self._states,
            failed_attempts=list(self._failed_attempts),
        )

    # -- slow-start gating ----------------------------------------------------------------

    def _shuffle_target(self, run: _RunState) -> float:
        """How far this run's current sub-stage may progress right now.

        A reduce task launched by slow-start can only copy map output that
        exists: its shuffle sub-stage is capped at the completed-map
        fraction until the map stage closes.
        """
        if run.spec.kind is not StageKind.REDUCE or run.stage_idx != 0:
            return 1.0
        if run.current.name != "shuffle":
            return 1.0
        js = self._jobs[run.spec.job_name]
        if not js.map_stage_open:
            return 1.0
        total = js.job.num_map_tasks
        return js.maps_completed / total if total else 1.0

    def _is_gated(self, run: _RunState) -> bool:
        """True when the run sits at its availability boundary (stalled)."""
        target = self._shuffle_target(run)
        return target < 1.0 and run.progress >= target - _EPS

    # -- diagnostics --------------------------------------------------------------------------

    def _raise_stall(self, active: List[_RunState], rates: Dict[str, float]) -> None:
        stuck_jobs = [n for n, js in self._jobs.items() if not js.done]
        zero_flows = [r.flow_id() for r in active if rates.get(r.flow_id(), 0.0) <= _EPS]
        if zero_flows:
            raise SimulationError(
                f"stall in {self._workflow.name!r}: flows {zero_flows} have zero "
                "rate with no pending events"
            )
        pending = {
            n: sum(len(q) for q in js.pending.values())
            for n, js in self._jobs.items()
            if any(js.pending.values())
        }
        if pending and not self._runs:
            raise SchedulingError(
                f"deadlock in {self._workflow.name!r}: pending tasks {pending} "
                "cannot be placed and nothing is running to free capacity"
            )
        raise SimulationError(
            f"stall in {self._workflow.name!r}: unfinished jobs {stuck_jobs}, "
            f"{len(self._runs)} runs in flight, no future events"
        )


def simulate(
    workflow: Workflow,
    cluster: Cluster,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it.

    ``config=None`` constructs a fresh default :class:`SimulationConfig`
    inside the call — a shared default *instance* in the signature would be
    evaluated once at import time and look mutable to callers.
    """
    if config is None:
        config = SimulationConfig()
    return Simulator(cluster, workflow, config).run()
