"""Replication seed derivation for Monte Carlo ensembles.

The simulator's stochastic inputs — per-task input-size skew
(:class:`~repro.mapreduce.task.SkewModel`, default seed 7) and task-attempt
failure injection (:class:`~repro.simulator.failures.FailureModel`, default
seed 11) — are deterministic given their seeds, so one
:class:`~repro.simulator.engine.SimulationConfig` describes exactly one
sample of the makespan distribution.  Ensembles (:mod:`repro.ensemble`)
need *N independent* samples whose seeds are reproducible regardless of
which process evaluates which replication, so the seeds here are derived
from a :class:`numpy.random.SeedSequence` spawn tree:

    replication *i* of base seed *b*  →  ``SeedSequence(b, spawn_key=(i,))``

``SeedSequence(b, spawn_key=(i,))`` is exactly the *i*-th child of
``SeedSequence(b).spawn(...)``, but can be constructed directly from
``(b, i)`` — no shared spawn counter, no ordering constraints — which is
what makes the ensemble's determinism contract (bit-identical aggregates
for a given ``(base_seed, n)`` across any process count or chunk order)
possible.  The child's first two state words become the skew seed and the
failure seed of that replication's config.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.errors import SpecificationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.simulator.engine import SimulationConfig

__all__ = ["replication_seeds", "replication_config"]


def replication_seeds(base_seed: int, index: int) -> Tuple[int, int]:
    """(skew_seed, failure_seed) of replication ``index`` under ``base_seed``.

    A pure function of ``(base_seed, index)``: the same pair is produced in
    any process, in any order, which the ensemble parity tests rely on.
    """
    if index < 0:
        raise SpecificationError(f"replication index must be >= 0: {index}")
    child = np.random.SeedSequence(base_seed, spawn_key=(index,))
    skew_seed, failure_seed = (int(word) for word in child.generate_state(2))
    return skew_seed, failure_seed


def replication_config(
    config: "SimulationConfig", base_seed: int, index: int
) -> "SimulationConfig":
    """``config`` re-seeded for replication ``index`` of ``base_seed``.

    Everything except the two RNG seeds (scheduler policy, skew shape,
    failure probability, engine choice) is preserved; only
    ``skew.seed`` and ``failures.seed`` are replaced by the derived pair,
    so replication 0 of an ensemble is *not* the legacy fixed-seed (7/11)
    run — the legacy run is simply the config as the caller built it.
    """
    skew_seed, failure_seed = replication_seeds(base_seed, index)
    return replace(
        config,
        skew=replace(config.skew, seed=skew_seed),
        failures=replace(config.failures, seed=failure_seed),
    )
