"""Optional compiled kernels for the columnar engine's hottest primitives.

The columnar engine (:mod:`repro.simulator.columnar`) is numpy-vectorised
end to end, but two primitives still dominate a million-task run's solve
phase: the grouped water-fill inside
:func:`~repro.simulator.sharing.solve_max_min_classes` (called once per
class per Gauss-Seidel sweep) and the fused progress/deadline recompute of
every re-shared slot.  Both are branchy element loops that a JIT turns into
tight machine code — BottleMod's argument applies here too: analytic
bottleneck evaluation is only useful while it stays orders of magnitude
cheaper than running the workload.

This module provides those primitives behind a **three-state gate**:

* ``REPRO_KERNELS=0`` — pure-numpy implementations, always available.
* ``REPRO_KERNELS=1`` — require the numba tier; if numba is not importable
  the fallback is used and a single WARNING is logged (never an error:
  the container images this library targets do not all ship a compiler
  toolchain).
* unset / ``REPRO_KERNELS=auto`` — use numba when importable, numpy
  otherwise, silently.

Correctness discipline: the numba kernels perform the *same float
operations in the same order* as the numpy fallbacks (sequential cumsum
accumulation, identical comparison constants), so trace parity holds
bit-for-bit whichever tier is active.  ``tests/simulator/test_kernels.py``
pins the two tiers against each other on adversarial inputs, and the CI
kernel-parity job re-runs the columnar + sharing suites under both gate
settings.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

import numpy as np

logger = logging.getLogger(__name__)

__all__ = [
    "KERNELS_ENV",
    "active_tier",
    "have_numba",
    "water_fill_grouped",
    "advance_progress",
    "deadline_when",
]

#: Environment variable gating the compiled tier (see module docstring).
KERNELS_ENV = "REPRO_KERNELS"

_EPS = 1e-12


# -- numpy reference implementations ------------------------------------------
#
# These are the canonical definitions; the numba tier below replicates their
# float arithmetic operation-for-operation.  They are module-level (not
# closures) so tests can target them directly regardless of the active tier.


def _water_fill_grouped_numpy(
    demands: np.ndarray, counts: np.ndarray, capacity: float, hungry: int
) -> float:
    """Solve ``hungry * tau + sum_j min(d_j * c_j... , tau) = capacity``.

    Bit-identical to the scalar ``_hungry_level_grouped`` loop in
    :mod:`repro.simulator.sharing`: lexsort reproduces the tuple sort of
    ``sorted([(demand, count), ...])`` and ``np.cumsum`` accumulates float64
    partial sums strictly left-to-right.
    """
    if demands.size == 0:
        return capacity / hungry
    order = np.lexsort((counts, demands))
    d = demands[order]
    c = counts[order]
    weighted = d * c
    prefix = np.empty(d.size)
    prefix[0] = 0.0
    np.cumsum(weighted[:-1], out=prefix[1:])
    consumed = np.empty(d.size, dtype=np.int64)
    consumed[0] = 0
    np.cumsum(c[:-1], out=consumed[1:])
    total = int(c.sum())
    tau = (capacity - prefix) / (total - consumed + hungry)
    fits = tau <= d + _EPS
    first = int(np.argmax(fits))
    if fits[first]:
        return float(tau[first])
    return float((capacity - (prefix[-1] + weighted[-1])) / hungry)


def _advance_progress_numpy(
    prog: np.ndarray,
    tbase: np.ndarray,
    rate: np.ndarray,
    targets: np.ndarray,
    now: float,
) -> np.ndarray:
    """Materialise lazily-advanced progress at ``now``, capped at targets.

    The fused form of the engine's ``np.where(advanced, np.minimum(...))``
    sequence — one pass, same elementwise operations.
    """
    advanced = (rate > 0.0) & (now > tbase)
    return np.where(
        advanced, np.minimum(targets, prog + (now - tbase) * rate), prog
    )


def _deadline_when_numpy(
    now: float, targets: np.ndarray, prog: np.ndarray, rates: np.ndarray
) -> np.ndarray:
    """Predicted decision instants: ``now + max(0, target - prog) / rate``."""
    return now + np.maximum(0.0, targets - prog) / rates


# -- numba tier ----------------------------------------------------------------


def _build_numba_kernels() -> Optional[dict]:
    """Compile the numba tier; ``None`` when numba is unavailable.

    Kept in a function so the import cost (and the possible ImportError) is
    paid once at module import, and so the compiled dispatchers close over
    nothing mutable.
    """
    try:
        from numba import njit  # type: ignore[import-not-found]
    except ImportError:
        return None

    # fastmath stays OFF: reassociation would break bit-parity with numpy.
    @njit(cache=True)
    def water_fill(demands, counts, capacity, hungry):  # pragma: no cover
        n = demands.size
        if n == 0:
            return capacity / hungry
        # Stable sort on the secondary key (counts) then on the primary
        # (demands) reproduces np.lexsort((counts, demands)).
        corder = np.argsort(counts, kind="mergesort")
        d_tmp = demands[corder]
        order = corder[np.argsort(d_tmp, kind="mergesort")]
        prefix = 0.0
        consumed = 0
        total = 0
        for i in range(n):
            total += counts[i]
        for i in range(n):
            di = demands[order[i]]
            ci = counts[order[i]]
            tau = (capacity - prefix) / (total - consumed + hungry)
            if tau <= di + _EPS:
                return tau
            prefix += di * ci
            consumed += ci
        return (capacity - prefix) / hungry

    @njit(cache=True)
    def advance(prog, tbase, rate, targets, now):  # pragma: no cover
        out = np.empty_like(prog)
        for i in range(prog.size):
            if rate[i] > 0.0 and now > tbase[i]:
                p = prog[i] + (now - tbase[i]) * rate[i]
                t = targets[i]
                out[i] = t if p > t else p
            else:
                out[i] = prog[i]
        return out

    @njit(cache=True)
    def when(now, targets, prog, rates):  # pragma: no cover
        out = np.empty_like(targets)
        for i in range(targets.size):
            gap = targets[i] - prog[i]
            if gap < 0.0:
                gap = 0.0
            out[i] = now + gap / rates[i]
        return out

    return {"water_fill": water_fill, "advance": advance, "when": when}


def _resolve() -> tuple:
    """Pick the active tier from the environment gate (import-time)."""
    mode = os.environ.get(KERNELS_ENV, "auto").strip().lower()
    if mode in ("0", "off", "false", "numpy"):
        return "numpy", None
    kernels = _build_numba_kernels()
    if kernels is None:
        if mode in ("1", "on", "true", "numba"):
            logger.warning(
                "%s=%s requested the compiled kernel tier but numba is not "
                "importable; falling back to the pure-numpy kernels "
                "(bit-identical results, lower throughput)",
                KERNELS_ENV,
                mode,
            )
        return "numpy", None
    return "numba", kernels


_TIER, _NUMBA = _resolve()


def have_numba() -> bool:
    """True when the numba tier compiled successfully at import."""
    return _NUMBA is not None


def active_tier() -> str:
    """``"numba"`` or ``"numpy"`` — whichever tier is serving calls."""
    return _TIER


# -- public dispatchers --------------------------------------------------------
#
# Resolved once at import: the hot loops call straight through a module
# attribute, no per-call branching.

if _TIER == "numba":
    _nb = _NUMBA

    def water_fill_grouped(
        demands: np.ndarray, counts: np.ndarray, capacity: float, hungry: int
    ) -> float:
        return float(
            _nb["water_fill"](demands, counts.astype(np.int64), capacity, hungry)
        )

    def advance_progress(
        prog: np.ndarray,
        tbase: np.ndarray,
        rate: np.ndarray,
        targets: np.ndarray,
        now: float,
    ) -> np.ndarray:
        return _nb["advance"](prog, tbase, rate, targets, now)

    def deadline_when(
        now: float, targets: np.ndarray, prog: np.ndarray, rates: np.ndarray
    ) -> np.ndarray:
        return _nb["when"](now, targets, prog, rates)

else:
    water_fill_grouped = _water_fill_grouped_numpy
    advance_progress = _advance_progress_numpy
    deadline_when = _deadline_when_numpy
