"""Execution traces — the simulator's equivalent of Hadoop job history.

The paper's authors collect task-level timelines from the cluster's job
history server; all their models are trained/validated against those traces.
Our :class:`SimulationResult` plays the same role: it records when every task
ran, how long each of its sub-stages took, the workflow *states* the
execution passed through (Fig. 5), and per-job stage boundaries.  It can be
round-tripped through JSON so profiles can be collected once and reused
(mirroring the awkward real-world trace collection this reproduction
replaces).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import SimulationError, TraceWindowError
from repro.mapreduce.stage import StageKind


@dataclass(frozen=True)
class SubStageTrace:
    """Timing of one sub-stage of one task."""

    name: str
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class TaskTrace:
    """Timeline of one executed task."""

    job: str
    kind: StageKind
    index: int
    node: int
    input_mb: float
    t_ready: float
    t_start: float
    t_end: float
    substages: Tuple[SubStageTrace, ...]

    @property
    def duration(self) -> float:
        """Wall-clock duration including the startup overhead."""
        return self.t_end - self.t_start

    @property
    def work_duration(self) -> float:
        """Duration of the sub-stage pipeline only (no startup overhead)."""
        if not self.substages:
            return 0.0
        return self.substages[-1].t_end - self.substages[0].t_start

    def substage_duration(self, name: str) -> Optional[float]:
        for sub in self.substages:
            if sub.name == name:
                return sub.duration
        return None


@dataclass(frozen=True)
class StageTrace:
    """Boundaries of one schedulable stage of one job."""

    job: str
    kind: StageKind
    t_start: float
    t_end: float
    num_tasks: int

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class StateTrace:
    """One workflow state: an interval with a fixed set of running stages.

    ``running`` holds (job name, stage kind) pairs.  States are maximal
    intervals between map/reduce transitions of any job (paper §IV-A1).
    """

    index: int
    t_start: float
    t_end: float
    running: FrozenSet[Tuple[str, StageKind]]

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class SimulationResult:
    """Everything a simulation run produced.

    ``failed_attempts`` records fault-injection casualties as
    (task id, attempt number, failure time) triples; successful re-executions
    appear in ``tasks`` as usual.
    """

    workflow_name: str
    makespan: float
    tasks: List[TaskTrace] = field(default_factory=list)
    stages: List[StageTrace] = field(default_factory=list)
    states: List[StateTrace] = field(default_factory=list)
    failed_attempts: List[Tuple[str, int, float]] = field(default_factory=list)

    # -- queries ---------------------------------------------------------------

    @property
    def task_count(self) -> int:
        """Number of finished tasks.

        Equivalent to ``len(self.tasks)`` here, but subclasses whose task
        list materialises lazily (the columnar engine's result) override it
        with an O(1) count — callers that only need the total should prefer
        it.
        """
        return len(self.tasks)

    def tasks_of(self, job: str, kind: Optional[StageKind] = None) -> List[TaskTrace]:
        return [
            t
            for t in self.tasks
            if t.job == job and (kind is None or t.kind is kind)
        ]

    def stage(self, job: str, kind: StageKind) -> StageTrace:
        for s in self.stages:
            if s.job == job and s.kind is kind:
                return s
        raise SimulationError(f"no stage trace for {job!r}/{kind}")

    def job_span(self, job: str) -> Tuple[float, float]:
        """(start, end) of a job = span of its stage traces."""
        spans = [s for s in self.stages if s.job == job]
        if not spans:
            raise SimulationError(f"no stage traces for job {job!r}")
        return min(s.t_start for s in spans), max(s.t_end for s in spans)

    def state_of_time(self, t: float) -> StateTrace:
        """The workflow state in effect at instant ``t``.

        The recorded states need not tile the timeline: idle intervals
        (nothing running) and transitions shorter than the engine's time
        tolerance are skipped, leaving gaps.  An instant inside such a gap
        resolves to the **latest state that started at or before** ``t`` —
        i.e. the configuration the workflow was last in — matching how the
        paper reads Fig. 5 timelines.  ``t`` equal to the final state's end
        (within 1e-9) returns that final state.

        Raises:
            TraceWindowError: ``t`` falls outside the traced window
                ``[states[0].t_start, states[-1].t_end]`` (or no states were
                recorded at all).
        """
        if not self.states:
            raise TraceWindowError(
                f"time {t} outside traced states: no states recorded"
            )
        first, last = self.states[0], self.states[-1]
        if t < first.t_start or t > last.t_end + 1e-9:
            raise TraceWindowError(
                f"time {t} outside traced states "
                f"[{first.t_start}, {last.t_end}]"
            )
        # States are stored in increasing t_start order; find the last one
        # starting at or before t.
        lo, hi = 0, len(self.states) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.states[mid].t_start <= t:
                lo = mid
            else:
                hi = mid - 1
        return self.states[lo]

    # -- (de)serialisation -------------------------------------------------------

    def to_json(self) -> str:
        def encode(obj):
            if isinstance(obj, StageKind):
                return obj.value
            if isinstance(obj, frozenset):
                return sorted([list(x) for x in obj])
            raise TypeError(f"cannot encode {type(obj)}")

        payload = {
            "workflow_name": self.workflow_name,
            "makespan": self.makespan,
            "tasks": [asdict(t) for t in self.tasks],
            "stages": [asdict(s) for s in self.stages],
            "states": [asdict(s) for s in self.states],
            "failed_attempts": [list(f) for f in self.failed_attempts],
        }
        return json.dumps(payload, default=encode, indent=None)

    @classmethod
    def from_json(cls, text: str) -> "SimulationResult":
        raw = json.loads(text)
        tasks = [
            TaskTrace(
                job=t["job"],
                kind=StageKind(t["kind"]),
                index=t["index"],
                node=t["node"],
                input_mb=t["input_mb"],
                t_ready=t["t_ready"],
                t_start=t["t_start"],
                t_end=t["t_end"],
                substages=tuple(SubStageTrace(**s) for s in t["substages"]),
            )
            for t in raw["tasks"]
        ]
        stages = [
            StageTrace(
                job=s["job"],
                kind=StageKind(s["kind"]),
                t_start=s["t_start"],
                t_end=s["t_end"],
                num_tasks=s["num_tasks"],
            )
            for s in raw["stages"]
        ]
        states = [
            StateTrace(
                index=s["index"],
                t_start=s["t_start"],
                t_end=s["t_end"],
                running=frozenset(
                    (job, StageKind(kind)) for job, kind in s["running"]
                ),
            )
            for s in raw["states"]
        ]
        return cls(
            workflow_name=raw["workflow_name"],
            makespan=raw["makespan"],
            tasks=tasks,
            stages=stages,
            states=states,
            failed_attempts=[tuple(f) for f in raw.get("failed_attempts", [])],
        )
