"""Columnar simulation engine: flat numpy state for million-task DAGs.

The fast engine (:mod:`repro.simulator.engine`) already made per-event work
proportional to the flows an event touches, but it still spends a Python
object per run (``_RunState``), a dict entry per flow and a heap entry per
deadline — at 10⁵–10⁶ tasks the interpreter overhead of *touching* that
state dominates.  This engine re-hosts the same event loop on columns:

* every launched attempt occupies a **slot** in a set of parallel numpy
  arrays (progress, rate, re-base time, sub-stage index, failure plan, …)
  keyed by slot index; per-task facts (job, index, input size, attempt
  count) live in a second set of arrays keyed by task uid;
* sub-stage pipelines and their sharing signatures are interned once per
  ``(job, kind, input_mb)`` into a **class registry**, so a node's sharing
  problem is described by a small (class id → count) composition; identical
  compositions across nodes resolve through one cached call to
  :func:`~repro.simulator.sharing.solve_max_min_classes` — the array-native
  class-level solver — instead of one solve per node;
* the deadline heap (:class:`~repro.simulator.events.CohortDeadlineHeap`)
  stores index *cohorts* — arrays of slots sharing one class, rate and
  predicted instant — validated by per-slot epochs instead of tokens.

Fidelity discipline is identical to the fast engine's: the object loops are
the oracle, and ``tests/simulator/test_columnar_parity.py`` pins this
engine's traces against them across the workload catalog.  The solver
arithmetic is bit-identical by construction (shared canonical class order,
same operation sequence — see :func:`~repro.simulator.sharing.class_sort_key`);
the only tolerated divergence is the ordering of same-instant decisions,
which the parity suite bounds at 1e-9 relative.
"""

from __future__ import annotations

import logging
import math
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.resources import Resource
from repro.dag.workflow import Workflow
from repro.errors import SchedulingError, SimulationError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.phases import SubStageSpec, build_task_substages
from repro.mapreduce.stage import StageKind, stage_input_mb
from repro.scheduler.container import container_for
from repro.simulator.engine import (
    SimulationConfig,
    Simulator,
    _EPS,
    _TIME_TOL,
    _JobState,
)
from repro.obs.metrics import get_metrics
from repro.simulator import kernels as _kernels
from repro.simulator.events import CohortDeadlineHeap
from repro.simulator.sharing import class_sort_key, solve_max_min_classes
from repro.simulator.trace import (
    SimulationResult,
    SubStageTrace,
    TaskTrace,
)

logger = logging.getLogger(__name__)

_KINDS = (StageKind.MAP, StageKind.REDUCE)

#: Generic (node-less) pool names.  A flow only ever touches its own node's
#: pools, so the node suffix in the object engines' ``cpu:<n>`` ids carries
#: no information within one sharing problem — and the generic names sort
#: exactly like the suffixed ones do within a node, which keeps
#: :func:`class_sort_key` orderings (and therefore sweep order and float
#: results) identical between the engines.
_POOL_NAME = {
    Resource.CPU: "cpu",
    Resource.DISK: "disk",
    Resource.NETWORK: "net",
}


class _Pipeline:
    """Interned sub-stage pipeline of one (job, kind, input size)."""

    __slots__ = ("names", "scids", "gate0", "fail_weights", "fail_total")

    def __init__(
        self,
        names: Tuple[str, ...],
        scids: Tuple[int, ...],
        gate0: bool,
        fail_weights: List[float],
        fail_total: float,
    ):
        self.names = names
        self.scids = scids
        self.gate0 = gate0  # first sub-stage is a slow-start-gated shuffle
        self.fail_weights = fail_weights
        self.fail_total = fail_total


class _TaskQueue:
    """Pending-task queue as a uid block plus a retry tail.

    Mirrors the object engines' deque semantics — the initial stage
    population drains front-to-back, failed attempts re-queue behind it —
    without materialising a Python object per task.
    """

    __slots__ = ("uids", "head", "retries", "rhead")

    def __init__(self, uids: np.ndarray):
        self.uids = uids
        self.head = 0
        self.retries: List[int] = []
        self.rhead = 0

    def __len__(self) -> int:
        return (len(self.uids) - self.head) + (len(self.retries) - self.rhead)

    def pop(self) -> int:
        if self.head < len(self.uids):
            uid = int(self.uids[self.head])
            self.head += 1
            return uid
        uid = self.retries[self.rhead]
        self.rhead += 1
        return uid

    def pop_batch(self, n: int) -> np.ndarray:
        """Pop ``n`` uids at once — same order as ``n`` sequential pops."""
        avail = len(self.uids) - self.head
        if n <= avail:
            out = self.uids[self.head : self.head + n]
            self.head += n
            return out
        parts = [self.uids[self.head :]]
        self.head = len(self.uids)
        take = n - avail
        parts.append(
            np.asarray(self.retries[self.rhead : self.rhead + take], dtype=np.int64)
        )
        self.rhead += take
        return np.concatenate(parts) if avail else parts[1]


class ColumnarResult(SimulationResult):
    """Simulation result whose per-task traces materialise lazily.

    A million-task run produces a million :class:`TaskTrace` objects nobody
    may ever look at; building them eagerly would cost more than the whole
    columnar simulation.  The trace columns stay as arrays until ``tasks``
    is first read; aggregate queries (:attr:`task_count`,
    :meth:`durations_array`) answer straight from the columns.
    """

    def __init__(
        self,
        workflow_name: str,
        makespan: float,
        stages,
        states,
        failed_attempts,
        task_builder,
        task_count: int,
        columns: Dict[str, np.ndarray],
        job_names: List[str],
        column_bytes: int = 0,
    ):
        # Deliberately not the dataclass __init__: ``tasks`` is a lazy
        # property here, not a field.
        self.workflow_name = workflow_name
        self.makespan = makespan
        self.stages = stages
        self.states = states
        self.failed_attempts = failed_attempts
        self._task_builder = task_builder
        self._tasks_cache: Optional[List[TaskTrace]] = None
        self._task_count = task_count
        self._columns = columns
        self._job_index = {name: i for i, name in enumerate(job_names)}
        #: Peak bytes held by the simulator's slot/task columns — the
        #: never-reused-slot design trades memory for speed, and the scale
        #: bench reports this next to tasks/s.
        self.column_bytes = column_bytes

    @property
    def tasks(self) -> List[TaskTrace]:
        if self._tasks_cache is None:
            self._tasks_cache = self._task_builder()
        return self._tasks_cache

    def __getstate__(self) -> Dict:
        # The lazy task builder is a closure over simulator internals and
        # cannot cross a process boundary.  A trace that is pickled at all
        # was explicitly kept (e.g. an ensemble exemplar shipping home from
        # a pool worker), so materialise the tasks once and drop the
        # builder — the unpickled copy serves them from the cache.
        _ = self.tasks
        state = self.__dict__.copy()
        state["_task_builder"] = None
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)

    @property
    def task_count(self) -> int:
        return self._task_count

    def durations_array(
        self,
        job: str,
        kind: Optional[StageKind] = None,
        include_overhead: bool = False,
    ) -> np.ndarray:
        """Task durations for one job straight from the trace columns.

        Same values, same canonical task order as iterating ``tasks_of`` —
        ``t_end - t_start`` are the identical floats — minus the object
        materialisation.
        """
        jid = self._job_index.get(job)
        if jid is None:
            return np.empty(0)
        cols = self._columns
        sel = cols["job"] == jid
        if kind is not None:
            sel &= cols["kind"] == (0 if kind is StageKind.MAP else 1)
        start = cols["t_start"] if include_overhead else cols["work_t0"]
        return cols["t_end"][sel] - start[sel]


class ColumnarSimulator(Simulator):
    """The fast event loop, re-hosted on flat numpy columns."""

    #: 1-D per-slot columns, grown geometrically and never reused: a task's
    #: retry occupies a fresh slot, so trace history needs no copying.
    _SLOT_FIELDS = (
        ("_s_uid", np.int64),
        ("_s_node", np.int32),
        ("_s_pid", np.int32),
        ("_s_scid", np.int32),
        ("_s_stage", np.int32),
        ("_s_attempt", np.int32),
        ("_s_fail_sub", np.int32),
        ("_s_progress", np.float64),
        ("_s_rate", np.float64),
        ("_s_tbase", np.float64),
        ("_s_tlaunch", np.float64),
        ("_s_twork", np.float64),
        ("_s_fail_frac", np.float64),
        ("_s_epoch", np.int64),
        ("_s_active", np.bool_),
        ("_s_gate", np.bool_),
        ("_s_dead", np.bool_),
    )

    _TASK_FIELDS = (
        ("_t_job", np.int32),
        ("_t_kind", np.int8),
        ("_t_index", np.int32),
        ("_t_pid", np.int32),
        ("_t_attempts", np.int32),
        ("_t_input", np.float64),
        ("_t_first", np.float64),
    )

    def __init__(
        self,
        cluster: Cluster,
        workflow: Workflow,
        config: SimulationConfig = SimulationConfig(),
    ):
        super().__init__(cluster, workflow, config)
        node = cluster.node
        self._capacities = {
            "cpu": float(node.cores),
            "disk": node.disk_mb_s,
            "net": node.network_mb_s,
        }

        # Job registry: stable integer ids in workflow order.
        self._job_names = [j.name for j in workflow.jobs]
        self._jid_of = {name: i for i, name in enumerate(self._job_names)}
        self._js_by_jid = [self._jobs[name] for name in self._job_names]
        rank_of = {n: r for r, n in enumerate(sorted(self._job_names))}
        self._job_rank = np.array(
            [rank_of[n] for n in self._job_names], dtype=np.int64
        )
        # (job, node) -> count of this job's live reduce attempts, for
        # slow-start dirty marking (the object engines scan all runs; the
        # set of nodes marked must be identical, hence exact per-node live
        # counts).
        self._n_nodes = cluster.workers
        self._reduce_counts = np.zeros(
            (len(self._job_names), cluster.workers), dtype=np.int64
        )

        # Solver-class registry (one entry per distinct sharing signature).
        self._class_key: Dict[tuple, int] = {}
        self._class_weights: List[Dict[str, float]] = []
        self._class_caps: List[Optional[float]] = []
        self._class_sort_keys: List[tuple] = []
        #: composition (tuple of (class id, count)) -> dense per-class rates
        self._rate_cache: Dict[tuple, np.ndarray] = {}

        # Pipeline registry + per-pid lookup columns.
        self._pipes: List[_Pipeline] = []
        self._pipe_key: Dict[Tuple[str, StageKind, float], int] = {}
        self._pipe_nsub = np.zeros(16, dtype=np.int32)
        self._pipe_scid0 = np.zeros(16, dtype=np.int32)
        self._pipe_gate0 = np.zeros(16, dtype=np.bool_)

        # Slot / task columns.
        self._slot_cap = 256
        self._n_slots = 0
        for name, dtype in self._SLOT_FIELDS:
            setattr(self, name, np.zeros(self._slot_cap, dtype=dtype))
        self._max_sub = 1
        self._sub_t0 = np.zeros((self._slot_cap, self._max_sub))
        self._sub_t1 = np.zeros((self._slot_cap, self._max_sub))
        self._task_cap = 256
        self._n_tasks = 0
        for name, dtype in self._TASK_FIELDS:
            setattr(self, name, np.zeros(self._task_cap, dtype=dtype))

        # Cohort deadline heap.  There is no per-node slot registry: a
        # node's live slots are recovered from the columns themselves
        # (``_s_active`` + ``_s_node``), and because slot ids are allocated
        # monotonically and never reused, ascending slot order *is* the
        # object engines' within-node insertion (tie-break) order.
        self._dl = CohortDeadlineHeap()
        self._epoch = 0
        self._live = 0
        self._done_slots: List[np.ndarray] = []
        self._done_count = 0
        self._failed_raw: List[Tuple[int, int, float]] = []

        # Phase attribution (satellite of the cohort-batching work): wall
        # time per hot-loop phase and fired-cohort sizes, riding the same
        # enabled-or-None discipline as the base counters.  Timers only
        # read the clock — instrumented runs stay bit-identical.
        metrics = get_metrics()
        if metrics.enabled:
            self._hist_cohort = metrics.histogram("engine.cohort_size")
            self._phase_hists = {
                phase: metrics.labeled_histogram("engine.phase_time", phase=phase)
                for phase in ("pop", "solve", "launch", "bookkeep")
            }
        else:
            self._hist_cohort = None
            self._phase_hists = None

    # -- capacity management ---------------------------------------------------

    def _alloc_slots(self, n: int) -> np.ndarray:
        need = self._n_slots + n
        if need > self._slot_cap:
            new_cap = max(need, self._slot_cap * 2)
            for name, dtype in self._SLOT_FIELDS:
                old = getattr(self, name)
                arr = np.zeros(new_cap, dtype=dtype)
                arr[: self._n_slots] = old[: self._n_slots]
                setattr(self, name, arr)
            for name in ("_sub_t0", "_sub_t1"):
                old = getattr(self, name)
                arr = np.zeros((new_cap, self._max_sub))
                arr[: self._n_slots, : old.shape[1]] = old[: self._n_slots]
                setattr(self, name, arr)
            self._slot_cap = new_cap
        base = self._n_slots
        self._n_slots = need
        return np.arange(base, need, dtype=np.int64)

    def _alloc_tasks(self, n: int) -> np.ndarray:
        need = self._n_tasks + n
        if need > self._task_cap:
            new_cap = max(need, self._task_cap * 2)
            for name, dtype in self._TASK_FIELDS:
                old = getattr(self, name)
                arr = np.zeros(new_cap, dtype=dtype)
                arr[: self._n_tasks] = old[: self._n_tasks]
                setattr(self, name, arr)
            self._task_cap = new_cap
        base = self._n_tasks
        self._n_tasks = need
        return np.arange(base, need, dtype=np.int64)

    def _grow_sub_columns(self, new_max: int) -> None:
        for name in ("_sub_t0", "_sub_t1"):
            old = getattr(self, name)
            arr = np.zeros((self._slot_cap, new_max))
            arr[:, : old.shape[1]] = old
            setattr(self, name, arr)
        self._max_sub = new_max

    # -- registries ------------------------------------------------------------

    def _class_for(self, sub: SubStageSpec) -> int:
        """Intern one sub-stage's sharing signature, returning its class id.

        Demands aggregate in op order and the per-flow cap folds with
        ``min`` in op order — the exact accumulation sequence of
        ``_RunState.build_flow`` + ``solve_max_min``, so the float weights
        are the identical values the object engines feed their solver.
        """
        agg: Dict[str, float] = {}
        cap: Optional[float] = None
        for op in sub.ops:
            pool = _POOL_NAME.get(op.resource)
            if pool is None:
                raise SimulationError(f"{op.resource} is not a throughput pool")
            agg[pool] = agg.get(pool, 0.0) + op.amount
            if op.per_flow_cap is not None:
                op_cap = op.per_flow_cap / op.amount
                cap = op_cap if cap is None else min(cap, op_cap)
        key = (cap, tuple(sorted(agg.items())))
        scid = self._class_key.get(key)
        if scid is None:
            scid = len(self._class_weights)
            self._class_key[key] = scid
            self._class_weights.append(agg)
            self._class_caps.append(cap)
            self._class_sort_keys.append(class_sort_key(*key))
        return scid

    def _pipeline_for(self, job: MapReduceJob, kind: StageKind, input_mb: float) -> int:
        key = (job.name, kind, input_mb)
        pid = self._pipe_key.get(key)
        if pid is not None:
            return pid
        substages = build_task_substages(
            job,
            kind,
            task_input_mb=input_mb if input_mb > 0 else None,
            remote_fraction=self._cluster.remote_fraction,
        )
        scids = tuple(self._class_for(sub) for sub in substages)
        gate0 = kind is StageKind.REDUCE and substages[0].name == "shuffle"
        fail_weights = [sum(op.amount for op in sub.ops) for sub in substages]
        fail_total = sum(fail_weights) or 1.0
        pid = len(self._pipes)
        self._pipes.append(
            _Pipeline(
                tuple(s.name for s in substages),
                scids,
                gate0,
                fail_weights,
                fail_total,
            )
        )
        self._pipe_key[key] = pid
        if pid >= len(self._pipe_nsub):
            new_cap = max(len(self._pipe_nsub) * 2, pid + 1)
            for name in ("_pipe_nsub", "_pipe_scid0", "_pipe_gate0"):
                old = getattr(self, name)
                arr = np.zeros(new_cap, dtype=old.dtype)
                arr[: len(old)] = old
                setattr(self, name, arr)
        self._pipe_nsub[pid] = len(substages)
        self._pipe_scid0[pid] = scids[0]
        self._pipe_gate0[pid] = gate0
        if len(substages) > self._max_sub:
            self._grow_sub_columns(len(substages))
        return pid

    def _task_id_str(self, uid: int) -> str:
        name = self._job_names[int(self._t_job[uid])]
        prefix = "m" if self._t_kind[uid] == 0 else "r"
        return f"{name}/{prefix}{int(self._t_index[uid])}"

    # -- job / stage lifecycle ---------------------------------------------------

    def _open_stage(self, js: _JobState, kind: StageKind) -> None:
        job = js.job
        n = job.num_tasks(kind)
        jid = self._jid_of[job.name]
        uids = self._alloc_tasks(n)
        if n:
            total = stage_input_mb(job, kind)
            skew = self._config.skew
            sigma = skew.sigma_for(kind)
            sizes = skew.task_sizes(
                total, n, salt=f"{job.name}/{kind.value}", sigma=sigma
            )
            self._t_job[uids] = jid
            self._t_kind[uids] = 0 if kind is StageKind.MAP else 1
            self._t_index[uids] = np.arange(n)
            self._t_input[uids] = sizes
            self._t_first[uids] = np.nan
            self._t_attempts[uids] = 0
            if n == 1 or sigma == 0.0 or total == 0.0:
                # task_sizes' uniform branch: one shared pipeline.
                self._t_pid[uids] = self._pipeline_for(job, kind, sizes[0])
            else:
                for uid, size in zip(uids.tolist(), sizes):
                    self._t_pid[uid] = self._pipeline_for(job, kind, size)
        js.pending[kind] = _TaskQueue(uids)  # type: ignore[assignment]
        js.running[kind] = 0
        js.completed[kind] = 0
        js.total[kind] = n
        js.stage_open[kind] = True
        js.stage_bounds[kind] = [self._now, self._now]
        if kind is StageKind.REDUCE:
            js.reduces_opened = True
        if n == 0:
            self._close_stage(js, kind)

    def _on_map_completed(self, js: _JobState) -> None:
        cfg = js.job.config
        if js.job.is_map_only:
            return
        if not js.reduces_opened and cfg.slowstart < 1.0:
            threshold = math.ceil(cfg.slowstart * js.job.num_map_tasks)
            if js.maps_completed >= threshold:
                self._open_stage(js, StageKind.REDUCE)
        if js.reduces_opened and js.map_stage_open:
            jid = self._jid_of[js.job.name]
            self._dirty_nodes.update(
                np.flatnonzero(self._reduce_counts[jid] > 0).tolist()
            )

    # -- scheduling --------------------------------------------------------------

    def _schedule_pending(self) -> None:
        requests = {}
        for name, js in self._jobs.items():
            if not js.arrived or js.done:
                continue
            queues = [
                (container_for(js.job, kind), len(js.pending.get(kind, ())))
                if js.stage_open.get(kind, False)
                else (container_for(js.job, kind), 0)
                for kind in _KINDS
            ]
            if any(count for _, count in queues):
                requests[name] = queues
        if not requests:
            return
        names, codes, nodes, qidx = self._placer.assign_queues_arrays(requests)
        n = codes.size
        if n == 0:
            return
        if self._ctr_sched is not None:
            self._ctr_sched.inc(n)
        if self._ctr_launched is not None:
            self._ctr_launched.inc(n)
        self._launch_batch(names, codes, nodes, qidx)

    def _launch_batch(
        self,
        names: List[str],
        codes: np.ndarray,
        nodes: np.ndarray,
        qidx: np.ndarray,
    ) -> None:
        n = codes.size
        slots = self._alloc_slots(n)
        now = self._now
        uids = np.empty(n, dtype=np.int64)
        jobs = self._jobs
        jid_of = self._jid_of
        # One stable-sort groupby over (job, queue): per-group work —
        # queue pops, running tallies, reduce-node counts, the overhead
        # event — happens once per group instead of once per grant, and
        # the stable sort keeps each group's pops in grant order, so the
        # uid -> slot pairing is exactly the scalar loop's.
        key = codes * 2 + qidx
        order = np.argsort(key, kind="stable")
        skey = key[order]
        cuts = np.flatnonzero(skey[1:] != skey[:-1]) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), cuts))
        ends = np.concatenate((cuts, np.array([n], dtype=np.int64)))
        overhead_groups: List[Tuple[float, np.ndarray]] = []
        for s, e in zip(starts.tolist(), ends.tolist()):
            idx = order[s:e]
            first = idx[0]
            name = names[codes[first]]
            queue_idx = int(qidx[first])
            js = jobs[name]
            kind = _KINDS[queue_idx]
            count = e - s
            uids[idx] = js.pending[kind].pop_batch(count)  # type: ignore[attr-defined]
            js.running[kind] += count
            if queue_idx == 1:
                np.add.at(self._reduce_counts[jid_of[name]], nodes[idx], 1)
            overhead_groups.append((js.job.config.task_overhead_s, slots[idx]))
        self._dirty_nodes.update(np.unique(nodes).tolist())
        self._s_uid[slots] = uids
        self._s_node[slots] = nodes
        pid = self._t_pid[uids]
        self._s_pid[slots] = pid
        self._s_scid[slots] = self._pipe_scid0[pid]
        self._s_gate[slots] = self._pipe_gate0[pid]
        self._s_stage[slots] = 0
        self._s_progress[slots] = 0.0
        self._s_rate[slots] = 0.0
        self._s_tbase[slots] = now
        self._s_tlaunch[slots] = now
        self._s_twork[slots] = now
        self._s_active[slots] = False
        self._s_dead[slots] = False
        self._s_epoch[slots] = -1
        self._s_fail_sub[slots] = -1
        self._s_fail_frac[slots] = 1.0
        attempts = self._t_attempts[uids] + 1
        self._t_attempts[uids] = attempts
        self._s_attempt[slots] = attempts
        fresh = np.isnan(self._t_first[uids])
        if fresh.any():
            self._t_first[uids[fresh]] = now
        if self._config.failures.enabled:
            self._plan_failures(slots, uids, attempts)
        self._live += n
        for overhead, arr in overhead_groups:
            if overhead > 0:
                self._events.push(now + overhead, ("ready", arr))
            else:
                self._s_active[arr] = True

    def _plan_failures(
        self, slots: np.ndarray, uids: np.ndarray, attempts: np.ndarray
    ) -> None:
        """Per-attempt failure plans; the draw stream matches the object
        engines exactly (same blake2b over the same ``task_id/attempt``)."""
        model = self._config.failures
        for slot, uid, attempt in zip(
            slots.tolist(), uids.tolist(), attempts.tolist()
        ):
            fails, fail_at = model.draw(self._task_id_str(uid), attempt)
            if not fails:
                continue
            pipe = self._pipes[int(self._t_pid[uid])]
            cumulative = 0.0
            weights = pipe.fail_weights
            for idx, weight in enumerate(weights):
                share = weight / pipe.fail_total
                if share <= 0:
                    continue
                if fail_at <= cumulative + share or idx == len(weights) - 1:
                    self._s_fail_sub[slot] = idx
                    self._s_fail_frac[slot] = min(
                        0.999, (fail_at - cumulative) / share
                    )
                    break
                cumulative += share

    # -- slow-start gating -------------------------------------------------------

    def _targets_for(self, slots: np.ndarray) -> np.ndarray:
        """Vectorised ``_shuffle_target`` over a slot batch.

        One stable-sort groupby pass over the gated slots' job ids — the
        former ``np.unique`` + per-job boolean masks rescanned the whole
        batch once per job, which made big multi-job batches quadratic.
        """
        out = np.ones(slots.size)
        gate_mask = self._s_gate[slots]
        if not gate_mask.any():
            return out
        gated = slots[gate_mask]
        jids = self._t_job[self._s_uid[gated]]
        values = np.ones(gated.size)
        order = np.argsort(jids, kind="stable")
        sorted_jids = jids[order]
        cuts = np.flatnonzero(sorted_jids[1:] != sorted_jids[:-1]) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), cuts))
        ends = np.concatenate((cuts, np.array([jids.size], dtype=np.int64)))
        for s, e in zip(starts.tolist(), ends.tolist()):
            js = self._js_by_jid[int(sorted_jids[s])]
            if not js.map_stage_open:
                continue
            total = js.job.num_map_tasks
            values[order[s:e]] = js.maps_completed / total if total else 1.0
        out[gate_mask] = values
        return out

    # -- sharing -----------------------------------------------------------------

    def _rates_for_comp(self, comp_key: tuple) -> np.ndarray:
        """Dense per-class rates for one node composition, cached.

        Symmetric cluster nodes running symmetric waves collapse onto a
        handful of compositions, so most node re-solves are one dict hit.
        """
        dense = self._rate_cache.get(comp_key)
        if dense is None:
            order = sorted(comp_key, key=lambda it: self._class_sort_keys[it[0]])
            rates = solve_max_min_classes(
                [self._class_weights[scid] for scid, _ in order],
                [self._class_caps[scid] for scid, _ in order],
                [count for _, count in order],
                self._capacities,
            )
            dense = np.zeros(len(self._class_weights))
            for (scid, _), rate in zip(order, rates):
                dense[scid] = rate
            self._rate_cache[comp_key] = dense
        return dense

    def _solve_dirty(self) -> None:
        """Re-share every dirty node in one batched pass.

        Equivalent to the fast engine's per-node ``_solve_node`` over
        ``sorted(dirty)``: node order does not matter because each node's
        rates depend only on its own composition, and the solver is a pure
        function of the canonically-ordered class sequence.
        """
        dirty = sorted(self._dirty_nodes)
        self._dirty_nodes.clear()
        if self._ctr_solves is not None:
            self._ctr_solves.inc(len(dirty))
        if not dirty:
            return
        # Gather the dirty nodes' live slots straight from the columns.
        # Slot ids are monotone and never reused, so the stable argsort by
        # node yields node-ascending, slot-ascending order — identical to
        # the oracle's sorted(dirty) + per-node insertion order, which is
        # what keeps the lexsort cohort tie-breaks below bit-stable.
        n = self._n_slots
        node_col = self._s_node[:n]
        dirty_mask = np.zeros(self._n_nodes, dtype=np.bool_)
        dirty_mask[dirty] = True
        cand = np.flatnonzero(self._s_active[:n] & dirty_mask[node_col])
        if cand.size == 0:
            return
        act = cand[np.argsort(node_col[cand], kind="stable")]
        now = self._now

        # Materialise lazily-advanced progress, exactly as _solve_node does:
        # target first (gating caps the advance), then re-base.
        targets = self._targets_for(act)
        rate = self._s_rate[act]
        prog = _kernels.advance_progress(
            self._s_progress[act], self._s_tbase[act], rate, targets, now
        )
        self._s_progress[act] = prog
        self._s_tbase[act] = now

        gated = (targets < 1.0) & (prog >= targets - _EPS)
        if gated.any():
            g = act[gated]
            self._s_rate[g] = 0.0
            self._s_epoch[g] = -1
            live = ~gated
            included = act[live]
            if included.size == 0:
                return
            tgt_inc = targets[live]
            prog_inc = prog[live]
        else:
            included = act
            tgt_inc = targets
            prog_inc = prog
        node_inc = self._s_node[included].astype(np.int64)
        scid_inc = self._s_scid[included].astype(np.int64)

        # Per-node compositions, deduplicated: nodes sharing a composition
        # share one solve (and usually a cached one).  Symmetric waves
        # collapse to a handful of distinct rows, so probe the all-equal
        # case first — it skips the (hash-based) row dedup entirely.
        nc = len(self._class_weights)
        seg_nodes = np.unique(node_inc)
        node_row = np.zeros(self._n_nodes, dtype=np.int64)
        node_row[seg_nodes] = np.arange(seg_nodes.size)
        rows = node_row[node_inc]
        comp = np.bincount(
            rows * nc + scid_inc, minlength=seg_nodes.size * nc
        ).reshape(seg_nodes.size, nc)
        if (comp == comp[0]).all():
            uniq = comp[:1]
            inverse = np.zeros(comp.shape[0], dtype=np.int64)
        else:
            uniq, inverse = np.unique(comp, axis=0, return_inverse=True)
        dense = np.zeros((uniq.shape[0], nc))
        for i in range(uniq.shape[0]):
            present = np.flatnonzero(uniq[i])
            comp_key = tuple(
                (int(scid), int(uniq[i, scid])) for scid in present
            )
            d = self._rates_for_comp(comp_key)
            dense[i, : d.size] = d
        new_rates = dense[inverse[rows], scid_inc]
        self._s_rate[included] = new_rates

        # Re-issue deadlines as (when, class, rate) cohorts.  The failure
        # cap only exists when injection is configured; the gathers are
        # pure overhead otherwise.
        if self._config.failures.enabled:
            fail_cap = self._s_fail_sub[included] == self._s_stage[included]
            tgt2 = np.where(
                fail_cap, np.minimum(tgt_inc, self._s_fail_frac[included]), tgt_inc
            )
        else:
            tgt2 = tgt_inc
        alive = new_rates > _EPS
        if alive.all():
            ok = included
            tgt_ok = tgt2
            prog_ok = prog_inc
            scid_ok = scid_inc
            rate_ok = new_rates
        else:
            self._s_epoch[included[~alive]] = -1  # starved: no deadline
            ok = included[alive]
            if ok.size == 0:
                return
            tgt_ok = tgt2[alive]
            prog_ok = prog_inc[alive]
            scid_ok = scid_inc[alive]
            rate_ok = new_rates[alive]
        when = _kernels.deadline_when(now, tgt_ok, prog_ok, rate_ok)
        self._epoch += 1
        epoch = self._epoch
        self._s_epoch[ok] = epoch
        order = np.lexsort((rate_ok, scid_ok, when))
        w = when[order]
        sc = scid_ok[order]
        rt = rate_ok[order]
        so = ok[order]
        if w.size == 1:
            cuts = np.empty(0, dtype=np.int64)
        else:
            cuts = (
                np.flatnonzero(
                    (w[1:] != w[:-1]) | (sc[1:] != sc[:-1]) | (rt[1:] != rt[:-1])
                )
                + 1
            )
        starts = np.concatenate((np.zeros(1, dtype=np.int64), cuts))
        ends = np.concatenate((cuts, np.array([w.size], dtype=np.int64)))
        for s, e in zip(starts.tolist(), ends.tolist()):
            self._dl.push(float(w[s]), epoch, so[s:e].copy(), float(rt[s]))

    # -- deadline firing -----------------------------------------------------------

    def _fire_cohort(self, slots: np.ndarray, rate: float) -> None:
        if self._ctr_deadlines is not None:
            self._ctr_deadlines.inc(slots.size)
        now = self._now
        self._s_epoch[slots] = -1
        targets = self._targets_for(slots)
        prog = self._s_progress[slots]
        if rate > 0.0:
            tbase = self._s_tbase[slots]
            prog = np.where(
                now > tbase,
                np.minimum(targets, prog + (now - tbase) * rate),
                prog,
            )
            self._s_progress[slots] = prog
        self._s_tbase[slots] = now
        failed = (self._s_fail_sub[slots] == self._s_stage[slots]) & (
            prog >= self._s_fail_frac[slots] - _EPS
        )
        completed = ~failed & (prog >= 1.0 - _EPS)
        gated = ~failed & ~completed & (targets < 1.0) & (prog >= targets - _EPS)
        moved = ~(failed | completed | gated)
        if failed.any():
            for slot in slots[failed].tolist():
                self._kill_slot(slot)
        if completed.any():
            self._complete_batch(slots[completed])
        if gated.any():
            g = slots[gated]
            self._s_rate[g] = 0.0
            self._dirty_nodes.update(np.unique(self._s_node[g]).tolist())
        if moved.any():
            self._dirty_nodes.update(
                np.unique(self._s_node[slots[moved]]).tolist()
            )

    def _fire_cohorts(self, cohorts: List[Tuple[np.ndarray, float]]) -> None:
        """Fire several same-instant cohorts as one vectorised pass.

        The advance/classify arithmetic is hoisted across the whole batch
        (cohorts are disjoint by the epoch construction, and every valid
        slot's rate column equals its cohort's pushed rate, so the batched
        elementwise ops are the per-cohort ops verbatim).  Two couplings
        force care:

        * slow-start-gated slots read job state (``maps_completed``) that
          an earlier cohort's completions may move *at this instant* — if
          any slot in the batch is gated, fall back to the sequential
          per-cohort path, which is the oracle there;
        * kills and completions stay per-cohort in pop order: retry-queue
          append order and the release/bookkeeping sequences are
          observable, and the sequential path is their definition.
        """
        all_slots = np.concatenate([slots for slots, _ in cohorts])
        if self._s_gate[all_slots].any():
            for slots, rate in cohorts:
                self._fire_cohort(slots, rate)
            return
        if self._ctr_deadlines is not None:
            self._ctr_deadlines.inc(all_slots.size)
        now = self._now
        self._s_epoch[all_slots] = -1
        rates = self._s_rate[all_slots]
        prog = _kernels.advance_progress(
            self._s_progress[all_slots],
            self._s_tbase[all_slots],
            rates,
            np.ones(all_slots.size),
            now,
        )
        self._s_progress[all_slots] = prog
        self._s_tbase[all_slots] = now
        failed = (self._s_fail_sub[all_slots] == self._s_stage[all_slots]) & (
            prog >= self._s_fail_frac[all_slots] - _EPS
        )
        completed = ~failed & (prog >= 1.0 - _EPS)
        moved = ~(failed | completed)
        offset = 0
        for slots, _rate in cohorts:
            end = offset + slots.size
            f = failed[offset:end]
            c = completed[offset:end]
            if f.any():
                for slot in slots[f].tolist():
                    self._kill_slot(slot)
            if c.any():
                self._complete_batch(slots[c])
            offset = end
        if moved.any():
            self._dirty_nodes.update(
                np.unique(self._s_node[all_slots[moved]]).tolist()
            )

    def _kill_slot(self, slot: int) -> None:
        uid = int(self._s_uid[slot])
        attempt = int(self._s_attempt[slot])
        model = self._config.failures
        task_id = self._task_id_str(uid)
        if attempt >= model.max_attempts:
            raise SimulationError(
                f"task {task_id} failed {attempt} attempts "
                f"(limit {model.max_attempts}); job aborted"
            )
        node = int(self._s_node[slot])
        jid = int(self._t_job[uid])
        js = self._js_by_jid[jid]
        kind = _KINDS[int(self._t_kind[uid])]
        self._s_dead[slot] = True
        self._s_active[slot] = False
        self._live -= 1
        self._dirty_nodes.add(node)
        self._placer.release(js.job.name, node, container_for(js.job, kind))
        js.running[kind] -= 1
        js.pending[kind].retries.append(uid)  # type: ignore[attr-defined]
        if kind is StageKind.REDUCE:
            self._reduce_counts[jid, node] -= 1
        if self._ctr_failed is not None:
            self._ctr_failed.inc()
        self._failed_raw.append((uid, attempt, self._now))

    def _complete_batch(self, slots: np.ndarray) -> None:
        now = self._now
        stage = self._s_stage[slots]
        self._sub_t0[slots, stage] = self._s_twork[slots]
        self._sub_t1[slots, stage] = now
        pid = self._s_pid[slots]
        new_stage = stage + 1
        finishing = new_stage >= self._pipe_nsub[pid]
        self._dirty_nodes.update(np.unique(self._s_node[slots]).tolist())
        continuing = ~finishing
        if continuing.any():
            c = slots[continuing]
            ns = new_stage[continuing]
            self._s_stage[c] = ns
            self._s_progress[c] = 0.0
            self._s_rate[c] = 0.0
            self._s_twork[c] = now
            self._s_tbase[c] = now
            self._s_gate[c] = False  # gating only ever applies to sub-stage 0
            pc = pid[continuing]
            for p, s in sorted(set(zip(pc.tolist(), ns.tolist()))):
                mask = (pc == p) & (ns == s)
                self._s_scid[c[mask]] = self._pipes[p].scids[s]
        if finishing.any():
            self._finish_batch(slots[finishing])

    def _finish_batch(self, slots: np.ndarray) -> None:
        self._s_dead[slots] = True
        self._s_active[slots] = False
        self._live -= slots.size
        self._done_slots.append(slots.copy())
        self._done_count += slots.size
        uids = self._s_uid[slots]
        nodes = self._s_node[slots].astype(np.int64)
        jids = self._t_job[uids].astype(np.int64)
        kind_codes = self._t_kind[uids].astype(np.int64)
        # Group completions by (job, kind) — ascending, like the former
        # sorted(dict) pass — with per-node release counts from np.unique.
        # Bookkeeping totals are order-independent within one instant, and
        # container releases stay float-exact: release_batch adds containers
        # back one at a time, and reordering nodes only permutes independent
        # per-node chains (the per-job usage sees the same sequence of
        # identical subtractions either way — see YarnPlacer.release_batch).
        key = jids * 2 + kind_codes
        order = np.argsort(key, kind="stable")
        skey = key[order]
        cuts = np.flatnonzero(skey[1:] != skey[:-1]) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), cuts))
        ends = np.concatenate((cuts, np.array([skey.size], dtype=np.int64)))
        for s, e in zip(starts.tolist(), ends.tolist()):
            first = order[s]
            jid = int(jids[first])
            code = int(kind_codes[first])
            js = self._js_by_jid[jid]
            kind = _KINDS[code]
            count = e - s
            group_nodes, group_counts = np.unique(
                nodes[order[s:e]], return_counts=True
            )
            self._placer.release_batch(
                js.job.name,
                zip(group_nodes.tolist(), group_counts.tolist()),
                container_for(js.job, kind),
            )
            js.running[kind] -= count
            js.completed[kind] += count
            if kind is StageKind.MAP:
                js.maps_completed += count
                self._on_map_completed(js)
            else:
                self._reduce_counts[jid, group_nodes] -= group_counts
            if (
                js.completed[kind] >= js.total[kind]
                and not js.pending[kind]
                and js.running[kind] == 0
            ):
                self._close_stage(js, kind)

    # -- event loop -----------------------------------------------------------------

    def _run_columnar(self) -> SimulationResult:
        for name in self._workflow.roots():
            self._arrive(name)
        self._schedule_pending()
        self._note_state_change()

        dl = self._dl
        events = self._events
        iterations = 0
        phases = self._phase_hists
        time_pop = time_solve = time_launch = time_book = 0.0
        mark = 0.0
        while True:
            iterations += 1
            if iterations > self._config.max_iterations:
                raise SimulationError(
                    f"simulation of {self._workflow.name!r} exceeded "
                    f"{self._config.max_iterations} iterations"
                )
            if self._dirty_nodes:
                if phases is not None:
                    mark = perf_counter()
                self._solve_dirty()
                if phases is not None:
                    time_solve += perf_counter() - mark

            # Drop heap entries whose every slot was re-shared since the
            # push (epoch mismatch) so they cannot masquerade as t_next.
            while True:
                head = dl.peek()
                if head is None:
                    break
                if bool(np.any(self._s_epoch[head[3]] == head[2])):
                    break
                dl.pop()
            t_deadline = dl.peek_time()
            t_event = events.peek_time()
            t_next = min(
                t_deadline if t_deadline is not None else math.inf,
                t_event if t_event is not None else math.inf,
            )
            if t_next == math.inf:
                if self._live or any(
                    not js.done for js in self._jobs.values()
                ):
                    self._raise_columnar_stall()
                break
            self._now = t_next

            # Pop the whole cohort group within the _EPS progress window of
            # t_next — the same fuzzy-window rule as the fast loop, per
            # cohort because a cohort shares one rate by construction —
            # then fire it as one batch.
            if phases is not None:
                mark = perf_counter()
            cohorts = dl.pop_due(t_next, self._s_epoch, _EPS)
            if cohorts:
                if self._hist_cohort is not None:
                    for cohort_slots, _rate in cohorts:
                        self._hist_cohort.observe(cohort_slots.size)
                if len(cohorts) == 1:
                    self._fire_cohort(cohorts[0][0], cohorts[0][1])
                else:
                    self._fire_cohorts(cohorts)
            if phases is not None:
                time_pop += perf_counter() - mark
                mark = perf_counter()

            for payload in events.pop_all_at(t_next, tol=_TIME_TOL):
                _kind, slots = payload
                self._s_active[slots] = True
                self._s_twork[slots] = t_next
                self._s_tbase[slots] = t_next
                self._dirty_nodes.update(
                    np.unique(self._s_node[slots]).tolist()
                )
            if phases is not None:
                time_book += perf_counter() - mark
                mark = perf_counter()

            self._schedule_pending()
            if phases is not None:
                time_launch += perf_counter() - mark
                mark = perf_counter()
            self._note_state_change()
            if phases is not None:
                time_book += perf_counter() - mark

            if self._live == 0 and all(
                js.done for js in self._jobs.values()
            ):
                break

        if self._ctr_events is not None:
            self._ctr_events.inc(iterations)
        if phases is not None:
            phases["pop"].observe(time_pop)
            phases["solve"].observe(time_solve)
            phases["launch"].observe(time_launch)
            phases["bookkeep"].observe(time_book)
        return self._build_result()

    # -- diagnostics -------------------------------------------------------------------

    def _raise_columnar_stall(self) -> None:
        stuck_jobs = [n for n, js in self._jobs.items() if not js.done]
        zero_flows = []
        for slot in np.flatnonzero(self._s_active[: self._n_slots]).tolist():
            target = float(self._targets_for(np.array([slot]))[0])
            if target < 1.0 and self._s_progress[slot] >= target - _EPS:
                continue  # gated, excluded like the object loops
            if self._s_rate[slot] <= _EPS:
                uid = int(self._s_uid[slot])
                zero_flows.append(
                    f"{self._task_id_str(uid)}/{int(self._s_stage[slot])}"
                )
        if zero_flows:
            raise SimulationError(
                f"stall in {self._workflow.name!r}: flows {zero_flows} have zero "
                "rate with no pending events"
            )
        pending = {
            n: sum(len(q) for q in js.pending.values())
            for n, js in self._jobs.items()
            if any(len(q) for q in js.pending.values())
        }
        if pending and self._live == 0:
            raise SchedulingError(
                f"deadlock in {self._workflow.name!r}: pending tasks {pending} "
                "cannot be placed and nothing is running to free capacity"
            )
        raise SimulationError(
            f"stall in {self._workflow.name!r}: unfinished jobs {stuck_jobs}, "
            f"{self._live} runs in flight, no future events"
        )

    # -- result assembly ------------------------------------------------------------------

    def _build_result(self) -> ColumnarResult:
        self._close_state()
        if self._done_count:
            slots = np.concatenate(self._done_slots)
            uids = self._s_uid[slots]
            # Canonical fast-engine task order: (t_start, job name, index).
            order = np.lexsort(
                (
                    self._t_index[uids],
                    self._job_rank[self._t_job[uids]],
                    self._s_tlaunch[slots],
                )
            )
            slots = slots[order]
            uids = uids[order]
        else:
            slots = np.empty(0, dtype=np.int64)
            uids = np.empty(0, dtype=np.int64)
        nsub = self._pipe_nsub[self._s_pid[slots]]
        columns = {
            "job": self._t_job[uids],
            "kind": self._t_kind[uids],
            "t_start": self._s_tlaunch[slots],
            "t_end": self._sub_t1[slots, nsub - 1] if slots.size else np.empty(0),
            "work_t0": self._sub_t0[slots, 0] if slots.size else np.empty(0),
        }
        failed = [
            (self._task_id_str(uid), attempt, when)
            for uid, attempt, when in self._failed_raw
        ]
        logger.debug(
            "simulated %s (columnar): makespan=%.3fs tasks=%d states=%d failures=%d",
            self._workflow.name,
            self._now,
            self._done_count,
            len(self._states),
            len(failed),
        )
        return ColumnarResult(
            workflow_name=self._workflow.name,
            makespan=self._now,
            stages=sorted(self._stage_traces, key=lambda s: (s.t_start, s.job)),
            states=self._states,
            failed_attempts=failed,
            task_builder=lambda: self._materialise_tasks(slots, uids),
            task_count=self._done_count,
            columns=columns,
            job_names=self._job_names,
            column_bytes=self.column_bytes(),
        )

    def column_bytes(self) -> int:
        """Current bytes held by the slot/task/sub-stage columns."""
        total = self._sub_t0.nbytes + self._sub_t1.nbytes
        total += self._reduce_counts.nbytes
        for name, _dtype in self._SLOT_FIELDS:
            total += getattr(self, name).nbytes
        for name, _dtype in self._TASK_FIELDS:
            total += getattr(self, name).nbytes
        return total

    def _materialise_tasks(
        self, slots: np.ndarray, uids: np.ndarray
    ) -> List[TaskTrace]:
        names = self._job_names
        sub_t0 = self._sub_t0
        sub_t1 = self._sub_t1
        pipes = self._pipes
        tasks: List[TaskTrace] = []
        for slot, uid in zip(slots.tolist(), uids.tolist()):
            pipe = pipes[int(self._s_pid[slot])]
            substages = tuple(
                SubStageTrace(name, float(sub_t0[slot, i]), float(sub_t1[slot, i]))
                for i, name in enumerate(pipe.names)
            )
            tasks.append(
                TaskTrace(
                    job=names[int(self._t_job[uid])],
                    kind=_KINDS[int(self._t_kind[uid])],
                    index=int(self._t_index[uid]),
                    node=int(self._s_node[slot]),
                    input_mb=float(self._t_input[uid]),
                    t_ready=float(self._t_first[uid]),
                    t_start=float(self._s_tlaunch[slot]),
                    t_end=substages[-1].t_end,
                    substages=substages,
                )
            )
        return tasks
