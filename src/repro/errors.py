"""Exception hierarchy for the library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers embedding the models inside larger systems can
catch one type at the integration boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SpecificationError(ReproError):
    """A cluster, job, or workflow specification is invalid.

    Raised at construction time (fail fast) rather than when the broken value
    is eventually consumed by a model or the simulator.
    """


class WorkflowError(SpecificationError):
    """A DAG workflow violates Definition 1 (cycle, dangling edge, ...)."""


class SchedulingError(ReproError):
    """The scheduler cannot produce a feasible allocation.

    Typical cause: a single container request exceeds the capacity of every
    node in the cluster, so the job can never run.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This always indicates a bug in the engine (e.g. a flow with zero rate but
    remaining work and no pending event) and is raised instead of looping
    forever.
    """


class TraceWindowError(SimulationError):
    """A trace query targets an instant outside the traced time window.

    Unlike its parent :class:`SimulationError`, this does **not** indicate an
    engine bug — the caller simply asked about a time before the first or
    after the last recorded workflow state.  It subclasses
    :class:`SimulationError` so existing handlers keep working.
    """


class EstimationError(ReproError):
    """A cost model cannot produce an estimate from the inputs it was given.

    For example: asking for a profile-driven estimate when the profile lacks
    the needed stage, or estimating a workflow whose jobs have no tasks.
    """


class ProfileError(ReproError):
    """A job profile is missing, malformed, or incompatible."""


class ServiceError(ReproError):
    """The prediction service rejected or could not complete a request.

    Raised for malformed service requests, unknown jobs, and scheduler
    capacity problems — conditions of the serving layer rather than of the
    models themselves.
    """


class JobTimeoutError(ServiceError):
    """A scheduled job exceeded its deadline.

    Deadlines are cooperative: runners poll a check between work chunks, so
    the job stops at the next chunk boundary after the deadline passes and
    its pool slots are released to other jobs.
    """


class JobCancelledError(ServiceError):
    """A scheduled job was cancelled before it completed.

    Like deadlines, cancellation is cooperative — the job observes the
    request at its next chunk boundary, stops feeding the shared pool, and
    surfaces this error instead of partial results.
    """
