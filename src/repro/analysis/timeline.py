"""Trace timelines: the textual equivalent of the paper's Fig. 1 diagram.

Given a simulation trace, render the task execution plan the way the paper
draws it — one lane per job stage, time flowing right, state boundaries
marked — plus per-resource utilisation strips derived from the recorded
task sub-stages.  Used by ``repro-dag timeline`` and handy when debugging
model-vs-simulator gaps (where exactly does the plan diverge?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.resources import Resource
from repro.errors import SimulationError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.phases import build_task_substages
from repro.mapreduce.stage import StageKind
from repro.simulator.trace import SimulationResult


def _lane_label(job: str, kind: StageKind) -> str:
    return f"{job}/{kind.value}"


def render_gantt(
    result: SimulationResult, width: int = 72, show_states: bool = True
) -> str:
    """An ASCII Gantt chart of the traced execution.

    Each stage is a lane; ``#`` marks the interval in which any of its tasks
    ran; digits on a separate scale row mark workflow-state boundaries.
    """
    if width < 20:
        raise SimulationError(f"gantt width must be >= 20 columns: {width}")
    if result.makespan <= 0:
        raise SimulationError("cannot render an empty trace")
    scale = width / result.makespan

    lanes: List[Tuple[str, float, float]] = [
        (_lane_label(s.job, s.kind), s.t_start, s.t_end)
        for s in sorted(result.stages, key=lambda s: (s.t_start, s.job))
    ]
    label_width = max(len(label) for label, _, _ in lanes)
    lines: List[str] = []
    header = f"{'':{label_width}}  0s{'':{max(0, width - 12)}}{result.makespan:.0f}s"
    lines.append(header)
    for label, t0, t1 in lanes:
        start = int(t0 * scale)
        end = max(start + 1, int(t1 * scale))
        bar = " " * start + "#" * (end - start)
        lines.append(f"{label:{label_width}}  |{bar[:width]:{width}}|")
    if show_states and result.states:
        marks = [" "] * width
        for state in result.states[1:]:
            pos = min(width - 1, int(state.t_start * scale))
            marks[pos] = "|"
        lines.append(f"{'states':{label_width}}  |{''.join(marks)}|")
        labels = [" "] * width
        for state in result.states:
            pos = min(width - 2, int(0.5 * (state.t_start + state.t_end) * scale))
            text = str(state.index)
            for i, ch in enumerate(text):
                if pos + i < width:
                    labels[pos + i] = ch
        lines.append(f"{'':{label_width}}  |{''.join(labels)}|")
    return "\n".join(lines)


def utilisation_series(
    result: SimulationResult,
    workflow_jobs: Dict[str, MapReduceJob],
    cluster: Cluster,
    resource: Resource,
    buckets: int = 24,
) -> List[float]:
    """Approximate cluster-wide utilisation of ``resource`` over time.

    Each task's resource consumption is reconstructed from its sub-stage
    spans and its job's declared operation volumes (demand spread uniformly
    over the observed sub-stage interval — the fluid view the simulator
    itself uses), then bucketed and normalised by the cluster's capacity.
    """
    if buckets < 1:
        raise SimulationError(f"buckets must be >= 1: {buckets}")
    if resource is Resource.CPU:
        capacity = float(cluster.total_cores)
    else:
        capacity = cluster.aggregate_bandwidth(resource)
    usage = [0.0] * buckets
    bucket_span = result.makespan / buckets
    if bucket_span <= 0:
        raise SimulationError("cannot bucket an empty trace")

    for task in result.tasks:
        job = workflow_jobs.get(task.job)
        if job is None:
            raise SimulationError(f"trace references unknown job {task.job!r}")
        substages = build_task_substages(
            job,
            task.kind,
            task_input_mb=task.input_mb if task.input_mb > 0 else None,
            remote_fraction=cluster.remote_fraction,
        )
        by_name = {s.name: s for s in substages}
        for span in task.substages:
            spec = by_name.get(span.name)
            if spec is None or span.duration <= 0:
                continue
            amount = spec.amount(resource)
            if amount <= 0:
                continue
            rate = amount / span.duration
            first = min(buckets - 1, int(span.t_start / bucket_span))
            last = min(buckets - 1, int(max(span.t_start, span.t_end - 1e-9) / bucket_span))
            for b in range(first, last + 1):
                b_start = b * bucket_span
                b_end = b_start + bucket_span
                overlap = min(span.t_end, b_end) - max(span.t_start, b_start)
                if overlap > 0:
                    usage[b] += rate * overlap
    return [u / (capacity * bucket_span) for u in usage]


def render_utilisation(
    result: SimulationResult,
    workflow_jobs: Dict[str, MapReduceJob],
    cluster: Cluster,
    buckets: int = 24,
) -> str:
    """Utilisation strips (0-9 scale, ``*`` = saturated) for CPU/disk/network."""
    lines = []
    for resource in (Resource.CPU, Resource.DISK, Resource.NETWORK):
        series = utilisation_series(
            result, workflow_jobs, cluster, resource, buckets
        )
        cells = []
        for value in series:
            if value >= 0.95:
                cells.append("*")
            else:
                cells.append(str(min(9, int(value * 10))))
        lines.append(f"{resource.value:8s} |{''.join(cells)}|")
    return "\n".join(lines)
