"""Accuracy metrics and table rendering for the experiment harness."""

from repro.analysis.accuracy import (
    AccuracySummary,
    accuracy,
    improvement_factor,
    relative_error,
    summarise,
)
from repro.analysis.tables import percentage, render_series, render_table
from repro.analysis.timeline import render_gantt, render_utilisation, utilisation_series

__all__ = [
    "AccuracySummary",
    "accuracy",
    "improvement_factor",
    "percentage",
    "relative_error",
    "render_gantt",
    "render_series",
    "render_table",
    "render_utilisation",
    "summarise",
    "utilisation_series",
]
