"""Accuracy metrics, matching the paper's reporting conventions.

The paper reports *accuracy* percentages (e.g. "the average accuracy for the
execution time estimation is 95.2%") computed as one minus the relative
error against the measured value, and expresses model comparisons as error
ratios ("outperforms the baseline by a factor of 6.6x").
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.errors import EstimationError


def accuracy(estimated: float, actual: float) -> float:
    """``1 - |est - actual| / actual``, clamped to [0, 1].

    Matches the paper's percentages; an estimate more than 100 % off scores
    zero rather than going negative, which keeps averages interpretable.
    """
    if actual <= 0:
        raise EstimationError(f"actual value must be positive, got {actual}")
    return max(0.0, 1.0 - abs(estimated - actual) / actual)


def relative_error(estimated: float, actual: float) -> float:
    """``|est - actual| / actual`` (unclamped)."""
    if actual <= 0:
        raise EstimationError(f"actual value must be positive, got {actual}")
    return abs(estimated - actual) / actual


def improvement_factor(
    baseline_estimate: float, model_estimate: float, actual: float
) -> float:
    """The paper's "outperforms by a factor of k": baseline error over
    model error.  Unbounded when the model is exact; capped at 1000x to keep
    tables printable."""
    base_err = relative_error(baseline_estimate, actual)
    model_err = relative_error(model_estimate, actual)
    if model_err <= 1e-12:
        return 1000.0
    return min(1000.0, base_err / model_err)


@dataclass(frozen=True)
class AccuracySummary:
    """Aggregate accuracy over a set of (estimate, actual) pairs."""

    mean: float
    median: float
    minimum: float
    maximum: float
    n: int

    @classmethod
    def of(cls, pairs: Sequence[Sequence[float]]) -> "AccuracySummary":
        if not pairs:
            raise EstimationError("cannot summarise zero accuracy pairs")
        values = [accuracy(est, act) for est, act in pairs]
        return cls(
            mean=statistics.fmean(values),
            median=float(statistics.median(values)),
            minimum=min(values),
            maximum=max(values),
            n=len(values),
        )


def summarise(values: Mapping[str, float]) -> AccuracySummary:
    """Summary of already-computed per-item accuracies."""
    if not values:
        raise EstimationError("cannot summarise an empty accuracy map")
    data = list(values.values())
    return AccuracySummary(
        mean=statistics.fmean(data),
        median=float(statistics.median(data)),
        minimum=min(data),
        maximum=max(data),
        n=len(data),
    )
