"""ASCII rendering of result tables.

The benchmark harness prints the same rows the paper reports (Tables I-III,
the Fig. 6 series); these helpers keep that formatting in one place so every
experiment renders consistently.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(value: Cell, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Monospace table with column alignment.

    >>> print(render_table(["a", "b"], [[1, 2.5]], precision=1))
    a | b
    --+----
    1 | 2.5
    """
    cells = [[_format_cell(c, precision) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[Cell],
    series: Mapping[str, Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """A figure-style table: one row per x value, one column per series."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(series[name][i] for name in series)] for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title, precision=precision)


def percentage(value: float) -> str:
    """Render an accuracy in the paper's percent style."""
    return f"{100.0 * value:.2f}%"
