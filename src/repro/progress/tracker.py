"""Progress estimation — the ParaTimer-flavoured application of §I.

A progress indicator answers "how much longer?" for a running DAG.  The
paper's §VI criticises ParaTimer for ignoring resource contention among
parallel tasks; here the same question is answered with the contention-aware
machinery: build a :class:`~repro.core.state.WorkflowProgress` snapshot of
what has completed, hand it to Algorithm 1, and the remaining time falls out
of the usual state iteration.

Two entry points:

* :func:`snapshot_at` reconstructs the snapshot from an execution trace at
  an arbitrary instant (the offline/validation path — a live deployment
  would build the same structure from the resource manager's counters);
* :class:`ProgressEstimator` turns snapshots into remaining-time estimates
  and progress fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.core.boe import BOEModel
from repro.core.distributions import Variant
from repro.core.estimator import BOESource, DagEstimator, TaskTimeSource
from repro.core.state import DagEstimate, WorkflowProgress
from repro.dag.workflow import Workflow
from repro.errors import EstimationError
from repro.mapreduce.stage import StageKind
from repro.simulator.trace import SimulationResult


def snapshot_at(
    result: SimulationResult, workflow: Workflow, at_time: float
) -> WorkflowProgress:
    """Reconstruct the workflow's progress snapshot at ``at_time``.

    Completed tasks count fully; in-flight tasks contribute their elapsed
    fraction (a live system would use task progress counters; the trace
    gives us the exact equivalent).
    """
    if at_time < 0:
        raise EstimationError(f"snapshot time must be >= 0: {at_time}")
    completed_jobs = set()
    running: Dict[str, Tuple[StageKind, float]] = {}
    for job_spec in workflow.jobs:
        name = job_spec.name
        stage_traces = [s for s in result.stages if s.job == name]
        if not stage_traces:
            continue  # job never started (trace from a failed run)
        job_end = max(s.t_end for s in stage_traces)
        job_start = min(s.t_start for s in stage_traces)
        if job_end <= at_time:
            completed_jobs.add(name)
            continue
        if job_start > at_time:
            continue  # not yet started: the estimator derives it from deps
        # The stage open at the snapshot instant.
        open_stage = None
        for s in stage_traces:
            if s.t_start <= at_time < s.t_end:
                open_stage = s
                break
        if open_stage is None:
            # Between stages (map closed, reduce not yet launched): the next
            # stage is fresh.
            upcoming = min(
                (s for s in stage_traces if s.t_start >= at_time),
                key=lambda s: s.t_start,
            )
            running[name] = (
                upcoming.kind,
                float(job_spec.num_tasks(upcoming.kind)),
            )
            continue
        kind = open_stage.kind
        total = float(job_spec.num_tasks(kind))
        done_work = 0.0
        for task in result.tasks_of(name, kind):
            if task.t_end <= at_time:
                done_work += 1.0
            elif task.t_start <= at_time:
                span = task.t_end - task.t_start
                if span > 0:
                    done_work += (at_time - task.t_start) / span
        running[name] = (kind, max(0.0, total - done_work))
    return WorkflowProgress(
        completed_jobs=frozenset(completed_jobs), running=running
    )


@dataclass(frozen=True)
class ProgressReport:
    """One progress answer.

    Attributes:
        at_time: the snapshot instant.
        remaining_s: estimated remaining execution time.
        eta_s: ``at_time + remaining_s``.
        fraction: estimated completed fraction of the whole run.
    """

    at_time: float
    remaining_s: float
    eta_s: float
    fraction: float


class ProgressEstimator:
    """Contention-aware remaining-time estimation for running workflows."""

    def __init__(
        self,
        cluster: Cluster,
        source: Optional[TaskTimeSource] = None,
        variant: Variant = Variant.MEAN,
    ):
        self._cluster = cluster
        self._source = source or BOESource(BOEModel(cluster))
        self._variant = variant

    def remaining(
        self, workflow: Workflow, snapshot: WorkflowProgress
    ) -> DagEstimate:
        """Algorithm 1 resumed from the snapshot; total_time = remaining."""
        estimator = DagEstimator(
            self._cluster, self._source, variant=self._variant
        )
        return estimator.estimate(workflow, initial=snapshot)

    def report(
        self,
        workflow: Workflow,
        snapshot: WorkflowProgress,
        at_time: float,
    ) -> ProgressReport:
        """Remaining time, ETA and completed fraction at ``at_time``."""
        remaining = self.remaining(workflow, snapshot).total_time
        total = at_time + remaining
        fraction = 0.0 if total <= 0 else min(1.0, at_time / total)
        return ProgressReport(
            at_time=at_time,
            remaining_s=remaining,
            eta_s=total,
            fraction=fraction,
        )

    def timeline(
        self,
        workflow: Workflow,
        result: SimulationResult,
        points: int = 10,
    ) -> list:
        """Progress reports at evenly spaced instants of a traced run —
        the validation sweep (estimated ETA vs the known makespan)."""
        if points < 1:
            raise EstimationError(f"points must be >= 1: {points}")
        reports = []
        for i in range(points):
            t = result.makespan * i / points
            snapshot = snapshot_at(result, workflow, t)
            reports.append(self.report(workflow, snapshot, t))
        return reports
