"""Progress estimation for running DAG workflows (§I application)."""

from repro.progress.tracker import (
    ProgressEstimator,
    ProgressReport,
    snapshot_at,
)

__all__ = ["ProgressEstimator", "ProgressReport", "snapshot_at"]
