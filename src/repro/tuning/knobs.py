"""Tunable configuration knobs and search spaces.

The paper's closing line promises to "apply our cost models in automatic
tuning for DAG workflows" — this package builds that application.  A *knob*
is one configuration field of one job together with its candidate values;
an *assignment* maps knobs to chosen values and can be applied to a workflow
to produce the re-configured copy.

The default search space covers the classic Hadoop tuning surface the
paper's workloads exercise (Table I's ``C`` column, reducer counts, split
sizes, container sizing), with candidate grids anchored at the job's current
configuration so the tuner explores around the deployment rather than a
fixed absolute menu.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.resources import ResourceVector
from repro.dag.workflow import Workflow
from repro.errors import SpecificationError
from repro.mapreduce.config import NO_COMPRESSION, SNAPPY_TEXT
from repro.mapreduce.job import MapReduceJob

#: Knob field names understood by :func:`apply_assignment`.
FIELDS = ("num_reducers", "compression", "split_mb", "map_memory_mb")


@dataclass(frozen=True)
class Knob:
    """One tunable field of one job.

    Attributes:
        job: job name within the workflow.
        field: one of :data:`FIELDS`.
        choices: candidate values, first entry = current value.
    """

    job: str
    field: str
    choices: Tuple

    def __post_init__(self) -> None:
        if self.field not in FIELDS:
            raise SpecificationError(
                f"unknown knob field {self.field!r}; pick one of {FIELDS}"
            )
        if len(self.choices) < 2:
            raise SpecificationError(
                f"knob {self.job}/{self.field} needs at least 2 choices"
            )

    @property
    def key(self) -> Tuple[str, str]:
        return (self.job, self.field)


Assignment = Dict[Tuple[str, str], object]


def current_value(workflow: Workflow, knob: Knob) -> object:
    """The workflow's *actual* value of the knob's field.

    This is the tuner's baseline.  Knob grids conventionally list the
    current value first, but nothing enforces it (custom spaces, or a
    workflow re-configured after the space was built), so the baseline is
    always derived from the workflow itself.  A knob naming a job absent
    from the workflow falls back to its first choice (such knobs are inert:
    :func:`apply_assignment` ignores foreign job names).
    """
    if knob.job not in workflow.job_map:
        return knob.choices[0]
    job = workflow.job(knob.job)
    if knob.field == "num_reducers":
        return job.num_reducers
    if knob.field == "compression":
        return job.config.compression
    if knob.field == "split_mb":
        return job.config.split_mb
    if knob.field == "map_memory_mb":
        return job.config.map_container.memory_mb
    raise SpecificationError(f"unknown knob field {knob.field!r}")  # pragma: no cover


def default_space(workflow: Workflow, cluster: Cluster) -> List[Knob]:
    """The standard knob grid for every job of a workflow."""
    knobs: List[Knob] = []
    slots = cluster.capacity.max_containers(ResourceVector(1.0, 3000.0))
    for job in workflow.jobs:
        if not job.is_map_only:
            current = job.num_reducers
            candidates = sorted(
                {
                    current,
                    max(2, current // 2),
                    current * 2,
                    slots,
                    2 * slots,
                }
            )
            # Current first (the tuner's baseline), then the rest.
            ordered = (current, *[c for c in candidates if c != current])
            knobs.append(Knob(job.name, "num_reducers", ordered))
        compression = job.config.compression
        knobs.append(
            Knob(
                job.name,
                "compression",
                (compression, SNAPPY_TEXT if not compression.enabled else NO_COMPRESSION),
            )
        )
        split = job.config.split_mb
        knobs.append(
            Knob(job.name, "split_mb", (split, split / 2, split * 2))
        )
        memory = job.config.map_container.memory_mb
        knobs.append(
            Knob(
                job.name,
                "map_memory_mb",
                (memory, memory / 2, memory * 2),
            )
        )
    return knobs


def wide_space(
    workflow: Workflow,
    cluster: Cluster,
    jobs: Optional[Sequence[str]] = None,
) -> List[Knob]:
    """A magnitude-spanning what-if grid.

    :func:`default_space` explores a tight neighbourhood of the deployed
    configuration — the greedy tuner's workhorse, where most candidates
    are near-neutral.  ``wide_space`` spans orders of magnitude per knob
    instead: the grid a capacity-planning sweep asks about ("what if the
    split were 32x smaller? one reducer? 16x the memory?"), where many
    extremes are provably bad and the analytic bound screen
    (:mod:`repro.core.bounds`) rejects them before estimation.

    Args:
        workflow: the workflow to build knobs for.
        cluster: sizes the reducer-count ceiling from container slots.
        jobs: restrict to these job names (default: every job).  Sweeps
            over a DAG's *dominant* jobs keep the grid focused where
            configuration actually moves the makespan.
    """
    knobs: List[Knob] = []
    slots = cluster.capacity.max_containers(ResourceVector(1.0, 3000.0))
    selected = None if jobs is None else set(jobs)
    for job in workflow.jobs:
        if selected is not None and job.name not in selected:
            continue
        if not job.is_map_only:
            current = job.num_reducers
            candidates = sorted(
                {
                    current,
                    1,
                    2,
                    max(2, current // 8),
                    current * 4,
                    slots,
                    4 * slots,
                    8 * slots,
                }
            )
            ordered = (current, *[c for c in candidates if c != current])
            knobs.append(Knob(job.name, "num_reducers", ordered))
        compression = job.config.compression
        knobs.append(
            Knob(
                job.name,
                "compression",
                (compression, SNAPPY_TEXT if not compression.enabled else NO_COMPRESSION),
            )
        )
        split = job.config.split_mb
        knobs.append(
            Knob(
                job.name,
                "split_mb",
                (split, split / 32, split / 8, split / 2, split * 2, split * 8),
            )
        )
        memory = job.config.map_container.memory_mb
        knobs.append(
            Knob(
                job.name,
                "map_memory_mb",
                (memory, memory / 4, memory / 2, memory * 2, memory * 4, memory * 16),
            )
        )
    return knobs


def _apply_field(job: MapReduceJob, field: str, value: object) -> MapReduceJob:
    """One job with one configuration field overridden."""
    if field == "num_reducers":
        reducers = int(value)
        if reducers < 0:
            raise SpecificationError(f"reducer count must be >= 0: {reducers}")
        return replace(job, num_reducers=reducers)
    if field == "compression":
        return job.with_config(compression=value)
    if field == "split_mb":
        return job.with_config(split_mb=float(value))
    if field == "map_memory_mb":
        container = job.config.map_container
        return job.with_config(
            map_container=ResourceVector(container.vcores, float(value))
        )
    raise SpecificationError(f"unknown knob field {field!r}")  # pragma: no cover


def apply_assignment(workflow: Workflow, assignment: Assignment) -> Workflow:
    """A copy of the workflow with the assignment's values applied."""
    jobs: List[MapReduceJob] = []
    for job in workflow.jobs:
        updated = job
        for (job_name, field), value in assignment.items():
            if job_name == job.name:
                updated = _apply_field(updated, field, value)
        jobs.append(updated)
    return Workflow(name=workflow.name, jobs=tuple(jobs), edges=workflow.edges)


def apply_knob_value(
    workflow: Workflow, key: Tuple[str, str], value: object
) -> Workflow:
    """A copy of the workflow with a single knob overridden.

    Equivalent to :func:`apply_assignment` with a one-entry assignment, but
    every job other than the knob's keeps its *object* identity, so
    downstream value diffs (candidate memoisation, trajectory prefix
    matching) short-circuit on ``is`` instead of comparing whole profiles.
    A key naming a job absent from the workflow is inert, matching
    :func:`apply_assignment`.
    """
    job_name, field = key
    if job_name not in workflow.job_map:
        return workflow
    jobs = tuple(
        _apply_field(job, field, value) if job.name == job_name else job
        for job in workflow.jobs
    )
    return Workflow(name=workflow.name, jobs=jobs, edges=workflow.edges)
