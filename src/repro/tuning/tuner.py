"""Model-driven configuration tuning for DAG workflows.

The application the paper's conclusion announces: because one state-based
estimate costs milliseconds (§V-C), a search over configuration knobs is
cheap enough to run at submission time.  :class:`GreedyTuner` performs
coordinate descent over the knob grid — evaluate every candidate of one
knob with the estimator, keep the best, move to the next knob, repeat until
a full pass improves nothing.

The tuner is deliberately *model-only*: it never touches the simulator.
Experiments then verify the tuned configuration against the simulated
ground truth (``benchmarks/bench_tuning.py``) — exactly the loop a real
self-tuning deployment would close against its cluster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.core.boe import BOEModel
from repro.core.distributions import Variant
from repro.core.estimator import BOESource, DagEstimator, TaskTimeSource
from repro.dag.workflow import Workflow
from repro.errors import EstimationError
from repro.tuning.knobs import Assignment, Knob, apply_assignment, default_space


@dataclass
class TuningResult:
    """Outcome of one tuning run.

    Attributes:
        workflow_name: the tuned workflow.
        baseline_estimate_s: estimated makespan of the original config.
        tuned_estimate_s: estimated makespan under ``assignment``.
        assignment: chosen value per knob (only knobs that changed).
        evaluations: number of estimator calls spent.
        wall_time_s: tuning cost (stays near-interactive by design).
        trajectory: (knob key, chosen value, estimate) per improvement.
    """

    workflow_name: str
    baseline_estimate_s: float
    tuned_estimate_s: float
    assignment: Assignment
    evaluations: int
    wall_time_s: float
    trajectory: List[Tuple[Tuple[str, str], object, float]] = field(
        default_factory=list
    )

    @property
    def improvement(self) -> float:
        """Estimated speed-up factor of the tuned configuration."""
        if self.tuned_estimate_s <= 0:
            raise EstimationError("tuned estimate must be positive")
        return self.baseline_estimate_s / self.tuned_estimate_s


class GreedyTuner:
    """Coordinate-descent tuner driven by the state-based estimator."""

    def __init__(
        self,
        cluster: Cluster,
        source: Optional[TaskTimeSource] = None,
        variant: Variant = Variant.MEAN,
        max_passes: int = 3,
    ):
        if max_passes < 1:
            raise EstimationError(f"max_passes must be >= 1: {max_passes}")
        self._cluster = cluster
        self._source = source or BOESource(BOEModel(cluster))
        self._variant = variant
        self._max_passes = max_passes

    def _estimate(self, workflow: Workflow) -> float:
        estimator = DagEstimator(self._cluster, self._source, variant=self._variant)
        return estimator.estimate(workflow).total_time

    def tune(
        self, workflow: Workflow, space: Optional[Sequence[Knob]] = None
    ) -> TuningResult:
        """Search the knob space; returns the best assignment found."""
        t0 = time.perf_counter()
        knobs = list(space) if space is not None else default_space(
            workflow, self._cluster
        )
        assignment: Assignment = {}
        evaluations = 1
        baseline = best = self._estimate(workflow)
        trajectory: List[Tuple[Tuple[str, str], object, float]] = []

        for _ in range(self._max_passes):
            improved = False
            for knob in knobs:
                current_choice = assignment.get(knob.key, knob.choices[0])
                best_choice = current_choice
                for candidate in knob.choices:
                    if candidate == current_choice:
                        continue
                    trial = dict(assignment)
                    trial[knob.key] = candidate
                    try:
                        estimate = self._estimate(
                            apply_assignment(workflow, trial)
                        )
                    except EstimationError:
                        continue  # infeasible candidate (e.g. zero tasks)
                    evaluations += 1
                    if estimate < best * (1.0 - 1e-6):
                        best = estimate
                        best_choice = candidate
                if best_choice != current_choice:
                    assignment[knob.key] = best_choice
                    trajectory.append((knob.key, best_choice, best))
                    improved = True
            if not improved:
                break

        # Drop knobs that ended on their original value.
        assignment = {
            key: value
            for key, value in assignment.items()
            if value != next(k.choices[0] for k in knobs if k.key == key)
        }
        return TuningResult(
            workflow_name=workflow.name,
            baseline_estimate_s=baseline,
            tuned_estimate_s=best,
            assignment=assignment,
            evaluations=evaluations,
            wall_time_s=time.perf_counter() - t0,
            trajectory=trajectory,
        )


def tune_workflow(
    workflow: Workflow,
    cluster: Cluster,
    space: Optional[Sequence[Knob]] = None,
) -> Tuple[TuningResult, Workflow]:
    """Convenience: tune and return (result, re-configured workflow)."""
    result = GreedyTuner(cluster).tune(workflow, space)
    return result, apply_assignment(workflow, result.assignment)
