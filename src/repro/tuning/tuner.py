"""Model-driven configuration tuning for DAG workflows.

The application the paper's conclusion announces: because one state-based
estimate costs milliseconds (§V-C), a search over configuration knobs is
cheap enough to run at submission time.  :class:`GreedyTuner` performs
coordinate descent over the knob grid — evaluate every candidate of one
knob with the estimator, keep the best, move to the next knob, repeat until
a full pass improves nothing.

Candidate evaluation goes through a :class:`~repro.sweep.SweepRunner`: each
knob's candidates form one batch, the runner's memoised BOE model re-prices
only the stage/parallelism combinations the knob actually perturbs, and a
parallel runner fans the batch over worker processes.  Estimates are
bit-identical to evaluating each candidate serially with a cold model — the
runner only changes *when* the arithmetic happens, never its result.

The tuner is deliberately *model-only*: it never touches the simulator.
Experiments then verify the tuned configuration against the simulated
ground truth (``benchmarks/bench_tuning.py``) — exactly the loop a real
self-tuning deployment would close against its cluster.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.core.boe import BOEModel
from repro.core.distributions import Variant
from repro.core.estimator import BOESource, TaskTimeSource
from repro.dag.workflow import Workflow
from repro.errors import EstimationError
from repro.obs.tracer import get_tracer
from repro.sweep import Candidate, SweepReport, SweepRunner

from repro.tuning.knobs import (
    Assignment,
    Knob,
    apply_assignment,
    apply_knob_value,
    current_value,
    default_space,
)

logger = logging.getLogger(__name__)


@dataclass
class TuningResult:
    """Outcome of one tuning run.

    Attributes:
        workflow_name: the tuned workflow.
        baseline_estimate_s: estimated makespan of the original config.
        tuned_estimate_s: estimated makespan under ``assignment``.
        assignment: chosen value per knob (only knobs that changed).
        evaluations: estimator calls *attempted* (baseline + every
            candidate, whether or not it produced an estimate or was
            pruned).
        infeasible: attempted candidates the estimator rejected.
        pruned: attempted candidates skipped by the analytic bound screen
            (their lower bound exceeded the incumbent's estimate, so they
            provably could not improve on it).
        wall_time_s: tuning cost (stays near-interactive by design).
        trajectory: (knob key, chosen value, estimate) per improvement.
        sweep: the runner's cumulative evaluation/cache telemetry.
    """

    workflow_name: str
    baseline_estimate_s: float
    tuned_estimate_s: float
    assignment: Assignment
    evaluations: int
    wall_time_s: float
    trajectory: List[Tuple[Tuple[str, str], object, float]] = field(
        default_factory=list
    )
    infeasible: int = 0
    pruned: int = 0
    sweep: Optional[SweepReport] = None

    @property
    def improvement(self) -> float:
        """Estimated speed-up factor of the tuned configuration."""
        if self.tuned_estimate_s <= 0:
            raise EstimationError("tuned estimate must be positive")
        return self.baseline_estimate_s / self.tuned_estimate_s


class GreedyTuner:
    """Coordinate-descent tuner driven by the state-based estimator.

    Args:
        cluster: target cluster.
        source: task-time source (defaults to a memoised BOE source).
        variant: estimator variant.
        max_passes: coordinate-descent passes over the knob list.
        processes: worker processes for candidate batches; 1 stays
            in-process (the cache alone carries small tuning runs).
        runner: a pre-configured shared :class:`~repro.sweep.SweepRunner`;
            overrides ``source``/``variant``/``processes``.
        prune: screen each knob batch with analytic makespan bounds
            (:mod:`repro.core.bounds`): candidates whose lower bound
            exceeds the incumbent's estimate are skipped before
            estimation.  Pruning is conservative — the chosen assignment
            and tuned estimate are bit-identical to ``prune=False`` —
            and silently inert for sources the bounds cannot bracket
            (non-BOE stubs and wrappers).
    """

    def __init__(
        self,
        cluster: Cluster,
        source: Optional[TaskTimeSource] = None,
        variant: Variant = Variant.MEAN,
        max_passes: int = 3,
        processes: int = 1,
        runner: Optional[SweepRunner] = None,
        prune: bool = True,
    ):
        if max_passes < 1:
            raise EstimationError(f"max_passes must be >= 1: {max_passes}")
        self._cluster = cluster
        self._source = source or BOESource(BOEModel(cluster))
        self._variant = variant
        self._max_passes = max_passes
        self._prune = prune
        self._runner = runner or SweepRunner(
            cluster, source=self._source, variant=variant, processes=processes
        )

    @property
    def runner(self) -> SweepRunner:
        return self._runner

    def _estimate_baseline(self, workflow: Workflow) -> float:
        [result] = self._runner.evaluate([Candidate(workflow, label="baseline")])
        if not result.ok:
            raise EstimationError(
                f"baseline configuration of {workflow.name!r} is infeasible: "
                f"{result.error}"
            )
        return result.total_time_s

    def tune(
        self, workflow: Workflow, space: Optional[Sequence[Knob]] = None
    ) -> TuningResult:
        """Search the knob space; returns the best assignment found."""
        t0 = time.perf_counter()
        tracer = get_tracer()
        otr = tracer if tracer.enabled else None
        run_span = (
            otr.begin("tune.run", workflow=workflow.name)
            if otr is not None
            else None
        )
        knobs = list(space) if space is not None else default_space(
            workflow, self._cluster
        )
        # The workflow's actual configuration is the baseline for every
        # knob — grids are *not* trusted to list it first.
        baseline_value = {knob.key: current_value(workflow, knob) for knob in knobs}
        assignment: Assignment = {}
        evaluations = 1
        infeasible = 0
        pruned = 0
        baseline = best = self._estimate_baseline(workflow)
        trajectory: List[Tuple[Tuple[str, str], object, float]] = []
        # The incumbent workflow (current assignment applied), maintained
        # incrementally: each improvement adopts the winning candidate's
        # *object*, so candidates — one-knob diffs built from it — share
        # every untouched job by identity with the incumbent's cached
        # estimate trajectory.
        incumbent = workflow

        for pass_idx in range(self._max_passes):
            improved = False
            pass_span = (
                otr.begin("tune.pass", index=pass_idx + 1)
                if otr is not None
                else None
            )
            for knob in knobs:
                current_choice = assignment.get(knob.key, baseline_value[knob.key])
                candidates = [c for c in knob.choices if c != current_choice]
                knob_span = (
                    otr.begin(
                        "tune.knob",
                        knob=f"{knob.job}.{knob.field}",
                        candidates=len(candidates),
                    )
                    if otr is not None
                    else None
                )
                batch = [
                    Candidate(
                        apply_knob_value(incumbent, knob.key, candidate),
                        label=f"{knob.job}.{knob.field}={candidate}",
                    )
                    for candidate in candidates
                ]
                # Warm-start: pin the incumbent's trajectory so every
                # candidate of this knob — a one-job diff from it — can
                # resume Algorithm 1 from a shared state prefix (no-op on
                # runners without trajectory reuse).
                self._runner.seed(incumbent)
                # A candidate only wins if it estimates below
                # ``best * (1 - 1e-6)`` (the improvement test below), so a
                # lower bound above that threshold proves it cannot win —
                # the bound screen changes which candidates are *estimated*,
                # never which one is chosen.
                results = self._runner.evaluate(
                    batch,
                    prune=self._prune,
                    incumbent_time_s=best * (1.0 - 1e-6),
                )
                best_choice = current_choice
                best_idx: Optional[int] = None
                for idx, (candidate, result) in enumerate(zip(candidates, results)):
                    evaluations += 1
                    if result.pruned:  # provably cannot beat the incumbent
                        pruned += 1
                        continue
                    if not result.ok:  # infeasible candidate (e.g. zero tasks)
                        infeasible += 1
                        continue
                    if result.total_time_s < best * (1.0 - 1e-6):
                        best = result.total_time_s
                        best_choice = candidate
                        best_idx = idx
                if best_idx is not None:
                    assignment[knob.key] = best_choice
                    incumbent = batch[best_idx].workflow
                    trajectory.append((knob.key, best_choice, best))
                    improved = True
                    logger.debug(
                        "tune %s: %s.%s -> %r (est %.3fs)",
                        workflow.name,
                        knob.job,
                        knob.field,
                        best_choice,
                        best,
                    )
                if otr is not None:
                    otr.finish(
                        knob_span,
                        chosen=str(best_choice),
                        changed=best_choice != current_choice,
                    )
            if otr is not None:
                otr.finish(pass_span, improved=improved)
            if not improved:
                break

        # Drop knobs that ended on the workflow's own value.
        assignment = {
            key: value
            for key, value in assignment.items()
            if value != baseline_value[key]
        }
        if otr is not None:
            otr.finish(
                run_span,
                evaluations=evaluations,
                baseline_s=baseline,
                tuned_s=best,
                knobs_changed=len(assignment),
                pruned=pruned,
            )
        return TuningResult(
            workflow_name=workflow.name,
            baseline_estimate_s=baseline,
            tuned_estimate_s=best,
            assignment=assignment,
            evaluations=evaluations,
            infeasible=infeasible,
            pruned=pruned,
            wall_time_s=time.perf_counter() - t0,
            trajectory=trajectory,
            sweep=self._runner.report,
        )


def tune_workflow(
    workflow: Workflow,
    cluster: Cluster,
    space: Optional[Sequence[Knob]] = None,
    processes: int = 1,
    prune: bool = True,
) -> Tuple[TuningResult, Workflow]:
    """Convenience: tune and return (result, re-configured workflow)."""
    result = GreedyTuner(cluster, processes=processes, prune=prune).tune(
        workflow, space
    )
    return result, apply_assignment(workflow, result.assignment)
