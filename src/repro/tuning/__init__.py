"""Model-driven auto-tuning — the application the paper's conclusion names."""

from repro.tuning.knobs import (
    Assignment,
    FIELDS,
    Knob,
    apply_assignment,
    current_value,
    default_space,
    wide_space,
)
from repro.tuning.tuner import GreedyTuner, TuningResult, tune_workflow

__all__ = [
    "Assignment",
    "FIELDS",
    "GreedyTuner",
    "Knob",
    "TuningResult",
    "apply_assignment",
    "current_value",
    "default_space",
    "tune_workflow",
    "wide_space",
]
