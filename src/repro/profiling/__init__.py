"""Profiles: the stand-in for Hadoop job-history trace collection."""

from repro.profiling.profile import JobProfile, StageProfile
from repro.profiling.profiler import ProfileSource, profile_job, profile_workflow

__all__ = [
    "JobProfile",
    "ProfileSource",
    "StageProfile",
    "profile_job",
    "profile_workflow",
]
