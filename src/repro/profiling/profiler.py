"""Collecting profiles and serving them to the estimators.

Two pieces:

* :func:`profile_workflow` / :func:`profile_job` — run the simulator and
  condense the trace into :class:`~repro.profiling.profile.JobProfile`
  objects (the stand-in for Hadoop job-history collection).
* :class:`ProfileSource` — a :class:`~repro.core.estimator.TaskTimeSource`
  backed by profiles.  This realises the paper's Table III setting: "to
  eliminate the error of task-level models, we use task execution time
  profiles with the identical degree of parallelism for each stage" — the
  state-based Algorithm 1 is evaluated on measured task times, so any
  remaining error is attributable to the workflow-level model alone.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.core.distributions import TaskTimeDistribution
from repro.core.estimator import TaskTimeSource
from repro.dag.workflow import Workflow, single_job_workflow
from repro.errors import ProfileError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.stage import StageKind
from repro.profiling.profile import JobProfile
from repro.simulator.engine import SimulationConfig, simulate
from repro.simulator.trace import SimulationResult


def profile_job(
    job: MapReduceJob,
    cluster: Cluster,
    config: SimulationConfig = SimulationConfig(),
) -> JobProfile:
    """Profile one job by running it alone on the cluster."""
    result = simulate(single_job_workflow(job), cluster, config)
    return JobProfile.from_simulation(
        result, job.name, overhead_s=job.config.task_overhead_s
    )


def profile_workflow(
    workflow: Workflow,
    cluster: Cluster,
    config: SimulationConfig = SimulationConfig(),
    result: Optional[SimulationResult] = None,
) -> Dict[str, JobProfile]:
    """Profile every job of a workflow from one (shared) execution trace.

    Profiling inside the workflow context captures task times *at the
    degrees of parallelism the DAG actually exhibits* — the paper's Table III
    protocol.  Pass a pre-computed ``result`` to avoid re-simulating.
    """
    if result is None:
        result = simulate(workflow, cluster, config)
    return {
        job.name: JobProfile.from_simulation(
            result, job.name, overhead_s=job.config.task_overhead_s
        )
        for job in workflow.jobs
    }


class ProfileSource:
    """Task times served from measured profiles (Table III protocol).

    Attributes:
        profiles: job name -> profile.
        scale_with_delta: when True, re-base the profiled task time by the
            ratio of profiled to requested parallelism (a crude contention
            correction: task time grows linearly once the shared resource is
            saturated).  The paper's protocol profiles at identical
            parallelism, so the default is False (use the profile verbatim).
        include_overhead: add the profiled per-task startup cost, making the
            planned task time comparable to wall-clock stage behaviour.
    """

    def __init__(
        self,
        profiles: Mapping[str, JobProfile],
        scale_with_delta: bool = False,
        include_overhead: bool = True,
    ):
        self._profiles = dict(profiles)
        self._scale = scale_with_delta
        self._include_overhead = include_overhead

    def profile_for(self, job_name: str) -> JobProfile:
        try:
            return self._profiles[job_name]
        except KeyError:
            raise ProfileError(f"no profile for job {job_name!r}") from None

    def distribution(
        self,
        job: MapReduceJob,
        kind: StageKind,
        delta: float,
        concurrent: Sequence[Tuple[MapReduceJob, StageKind, float]],
    ) -> TaskTimeDistribution:
        stage = self.profile_for(job.name).stage(kind)
        dist = stage.task_time
        if self._scale and stage.delta > 0 and delta > 0:
            # Linear contention correction relative to the profiled point.
            factor = max(1.0, delta / stage.delta)
            profiled_factor = max(1.0, 1.0)
            dist = dist.scaled(factor / profiled_factor)
        if self._include_overhead and stage.overhead_s > 0:
            dist = TaskTimeDistribution(
                mean=dist.mean + stage.overhead_s,
                median=dist.median + stage.overhead_s,
                std=dist.std,
                n=dist.n,
            )
        return dist
