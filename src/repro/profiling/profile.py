"""Job profiles — the measured statistics the estimators consume.

In the authors' system, profiles come from the Hadoop job-history server
("historical profile P" in Problem 1).  Here they come from simulator traces
(:meth:`JobProfile.from_simulation`) and can be serialised to JSON so a
profiling run is paid once per workload (replacing the awkward real-world
trace collection this reproduction substitutes for).

A profile records, per stage and optionally per sub-stage, the task-time
distribution together with the degree of parallelism it was observed at —
the baselines' defining limitation is precisely that they assume the
observed-at parallelism still holds at prediction time.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.distributions import TaskTimeDistribution
from repro.errors import ProfileError
from repro.mapreduce.stage import StageKind
from repro.simulator.metrics import average_parallelism, task_durations
from repro.simulator.trace import SimulationResult


def _pooled_within_state_std(
    result: SimulationResult, job_name: str, kind: StageKind
) -> Optional[float]:
    """Pooled standard deviation of task times within each workflow state.

    Tasks are grouped by the state containing their midpoint; the pooled
    variance is the sample-count-weighted mean of per-group variances.
    Returns None when the trace carries no states (nothing to group by).
    """
    if not result.states:
        return None
    import statistics

    groups: Dict[int, list] = {}
    for task in result.tasks_of(job_name, kind):
        mid = 0.5 * (task.t_start + task.t_end)
        for state in result.states:
            if state.t_start <= mid < state.t_end or (
                state is result.states[-1] and abs(mid - state.t_end) < 1e-9
            ):
                groups.setdefault(state.index, []).append(task.work_duration)
                break
    weighted = 0.0
    count = 0
    for durations in groups.values():
        if len(durations) < 2:
            continue
        weighted += statistics.pvariance(durations) * len(durations)
        count += len(durations)
    if count == 0:
        return 0.0
    return (weighted / count) ** 0.5


@dataclass(frozen=True)
class StageProfile:
    """Measured statistics of one job stage.

    Attributes:
        kind: MAP or REDUCE.
        num_tasks: tasks the stage ran.
        delta: time-averaged degree of parallelism during the observation.
        task_time: distribution of whole-task times (sub-stage pipeline,
            excluding container startup).
        substage_times: distributions per sub-stage name ("map", "merge",
            "shuffle", "reduce").
        overhead_s: the per-task startup cost in effect during profiling.
    """

    kind: StageKind
    num_tasks: int
    delta: float
    task_time: TaskTimeDistribution
    substage_times: Dict[str, TaskTimeDistribution] = field(default_factory=dict)
    overhead_s: float = 0.0


@dataclass(frozen=True)
class JobProfile:
    """Measured statistics of one job across its stages."""

    job_name: str
    stages: Dict[StageKind, StageProfile]

    def stage(self, kind: StageKind) -> StageProfile:
        try:
            return self.stages[kind]
        except KeyError:
            raise ProfileError(
                f"profile of {self.job_name!r} has no {kind} stage"
            ) from None

    @classmethod
    def from_simulation(
        cls, result: SimulationResult, job_name: str, overhead_s: float = 0.0
    ) -> "JobProfile":
        """Extract a profile for ``job_name`` from a simulation trace.

        The task-time distribution's ``std`` is the *pooled within-state*
        standard deviation: task times differ across workflow states because
        the resource allocation differs (that part is what Algorithm 1
        models explicitly), while the within-state spread is the genuine
        randomness (skew, stragglers) the Alg2-Normal variant should absorb.
        Mixing the two would double-count the cross-state variation.
        """
        stages: Dict[StageKind, StageProfile] = {}
        for stage_trace in result.stages:
            if stage_trace.job != job_name:
                continue
            kind = stage_trace.kind
            durations = task_durations(result, job_name, kind)
            substage_names = {
                s.name for t in result.tasks_of(job_name, kind) for s in t.substages
            }
            substage_times = {}
            for name in sorted(substage_names):
                subs = task_durations(result, job_name, kind, substage=name)
                substage_times[name] = TaskTimeDistribution.from_durations(subs)
            dist = TaskTimeDistribution.from_durations(durations)
            within_std = _pooled_within_state_std(result, job_name, kind)
            if within_std is not None:
                dist = TaskTimeDistribution(
                    mean=dist.mean, median=dist.median, std=within_std, n=dist.n
                )
            stages[kind] = StageProfile(
                kind=kind,
                num_tasks=stage_trace.num_tasks,
                delta=average_parallelism(result, job_name, kind),
                task_time=dist,
                substage_times=substage_times,
                overhead_s=overhead_s,
            )
        if not stages:
            raise ProfileError(f"trace has no stages for job {job_name!r}")
        return cls(job_name=job_name, stages=stages)

    # -- JSON round-trip ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "job_name": self.job_name,
            "stages": {
                kind.value: {
                    "num_tasks": sp.num_tasks,
                    "delta": sp.delta,
                    "overhead_s": sp.overhead_s,
                    "task_time": asdict(sp.task_time),
                    "substage_times": {
                        name: asdict(d) for name, d in sp.substage_times.items()
                    },
                }
                for kind, sp in self.stages.items()
            },
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "JobProfile":
        try:
            stages = {
                StageKind(kind): StageProfile(
                    kind=StageKind(kind),
                    num_tasks=entry["num_tasks"],
                    delta=entry["delta"],
                    overhead_s=entry.get("overhead_s", 0.0),
                    task_time=TaskTimeDistribution(**entry["task_time"]),
                    substage_times={
                        name: TaskTimeDistribution(**d)
                        for name, d in entry["substage_times"].items()
                    },
                )
                for kind, entry in raw["stages"].items()
            }
            return cls(job_name=raw["job_name"], stages=stages)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileError(f"malformed profile payload: {exc}") from exc

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "JobProfile":
        return cls.from_dict(json.loads(Path(path).read_text()))
