"""Paired what-if comparisons under common random numbers (CRN).

Ranking two configurations by two independent point samples confuses the
configuration effect with replication noise.  The classic variance-
reduction fix is *common random numbers*: run both configurations under
the **same** per-replication seeds, so the skew draws and failure draws
that make one replication slow hit both sides alike, and the paired delta

    ``delta_i = makespan_B(seed_i) - makespan_A(seed_i)``

cancels the shared noise.  The paired CI half-width
``z * std(delta) / sqrt(n)`` is then strictly tighter than the unpaired
(Welch) half-width ``z * sqrt(var_A/n + var_B/n)`` whenever the two sides
are positively correlated — which CRN engineers by construction (the knob
sweeps the paper cares about, cluster size / reducer count / compression,
leave most draws shared).

Early stopping here targets the *delta*: sampling continues until the
paired CI half-width drops below ``ci_tol`` relative to the baseline's
mean makespan, within the usual hard min/max replication bounds.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.dag.workflow import Workflow
from repro.errors import SpecificationError
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.simulator.engine import SimulationConfig
from repro.ensemble.engine import (
    EnsembleConfig,
    VariantSpec,
    _Accumulator,
    _EnsembleSetup,
    _ReplicationDriver,
)
from repro.ensemble.quantiles import RunningStat, mean_halfwidth

logger = logging.getLogger(__name__)

__all__ = ["PairedComparison", "compare_paired", "paired_from_samples"]


@dataclass(frozen=True)
class PairedComparison:
    """Distribution of paired makespan deltas between two configurations.

    ``deltas[i] = samples_b[i] - samples_a[i]`` under common random
    numbers: negative deltas mean B is faster.  The unpaired half-width is
    the Welch interval the same samples would give if A and B had been run
    independently — reported so the CRN variance reduction is visible.
    """

    label_a: str
    label_b: str
    replications: int
    base_seed: int
    samples_a: Tuple[float, ...]
    samples_b: Tuple[float, ...]
    deltas: Tuple[float, ...]
    mean_a: float
    mean_b: float
    mean_delta: float
    ci: Tuple[float, float]
    paired_halfwidth: float
    unpaired_halfwidth: float
    win_rate: float
    early_stopped: bool = False
    wall_time_s: float = 0.0
    cpu_time_s: float = 0.0
    processes: int = 1
    pool_used: bool = False

    @property
    def variance_reduction(self) -> float:
        """How much tighter pairing made the CI (>1 = tighter)."""
        if self.paired_halfwidth <= 0:
            return float("inf")
        return self.unpaired_halfwidth / self.paired_halfwidth

    @property
    def significant(self) -> bool:
        """True when the delta CI excludes zero."""
        return self.ci[0] > 0.0 or self.ci[1] < 0.0

    def describe(self) -> str:
        verdict = (
            f"{self.label_b} faster"
            if self.ci[1] < 0
            else f"{self.label_a} faster"
            if self.ci[0] > 0
            else "no significant difference"
        )
        return (
            f"{self.label_b} - {self.label_a}: {self.mean_delta:+.1f}s "
            f"[{self.ci[0]:+.1f}, {self.ci[1]:+.1f}] over "
            f"{self.replications} paired replications "
            f"(win rate {self.win_rate:.0%}, CI {self.variance_reduction:.1f}x "
            f"tighter than unpaired) — {verdict}"
        )


def paired_from_samples(
    label_a: str,
    samples_a: Sequence[float],
    label_b: str,
    samples_b: Sequence[float],
    base_seed: int,
    z: float = 1.96,
    **telemetry,
) -> PairedComparison:
    """Build a :class:`PairedComparison` from aligned CRN sample vectors.

    ``samples_a[i]`` and ``samples_b[i]`` must come from the *same*
    replication seeds (index ``i`` of ``base_seed``) — that alignment is
    what makes the subtraction meaningful.
    """
    if len(samples_a) != len(samples_b) or not samples_a:
        raise SpecificationError(
            "paired comparison needs equal-length, non-empty sample vectors: "
            f"{len(samples_a)} vs {len(samples_b)}"
        )
    stat_a, stat_b, stat_d = RunningStat(), RunningStat(), RunningStat()
    deltas = []
    wins = 0
    for a, b in zip(samples_a, samples_b):
        delta = b - a
        deltas.append(delta)
        stat_a.push(a)
        stat_b.push(b)
        stat_d.push(delta)
        if delta < 0:
            wins += 1
    n = len(deltas)
    paired = mean_halfwidth(n, stat_d.std, z)
    unpaired = mean_halfwidth(n, (stat_a.variance + stat_b.variance) ** 0.5, z)
    return PairedComparison(
        label_a=label_a,
        label_b=label_b,
        replications=n,
        base_seed=base_seed,
        samples_a=tuple(samples_a),
        samples_b=tuple(samples_b),
        deltas=tuple(deltas),
        mean_a=stat_a.mean,
        mean_b=stat_b.mean,
        mean_delta=stat_d.mean,
        ci=(stat_d.mean - paired, stat_d.mean + paired),
        paired_halfwidth=paired,
        unpaired_halfwidth=unpaired,
        win_rate=wins / n,
        **telemetry,
    )


def compare_paired(
    workflow_a: Workflow,
    workflow_b: Workflow,
    cluster: Cluster,
    cluster_b: Optional[Cluster] = None,
    config: Optional[SimulationConfig] = None,
    ensemble: Optional[EnsembleConfig] = None,
    labels: Optional[Tuple[str, str]] = None,
) -> PairedComparison:
    """Compare two configurations with common random numbers.

    Replication ``i`` of both sides runs under the seeds derived from
    ``(ensemble.base_seed, i)``; with ``ensemble.ci_tol`` set, sampling
    stops once the paired delta CI half-width is within
    ``ci_tol * mean(A makespan)``, between the configured min/max bounds.
    The early-stop schedule depends only on the config, so the comparison
    is deterministic for any process count.
    """
    ens = ensemble if ensemble is not None else EnsembleConfig()
    config = config if config is not None else SimulationConfig()
    label_a, label_b = labels if labels is not None else (
        workflow_a.name,
        workflow_b.name,
    )
    t0 = time.perf_counter()
    tracer = get_tracer()
    span = (
        tracer.begin("ensemble.compare", a=label_a, b=label_b)
        if tracer.enabled
        else None
    )
    registry = get_metrics()
    replication_ctr = (
        registry.counter("ensemble.replications") if registry.enabled else None
    )
    acc_a = _Accumulator(ens.tracked_quantiles(), replication_ctr)
    acc_b = _Accumulator(ens.tracked_quantiles(), replication_ctr)
    setup = _EnsembleSetup(
        variants=(
            VariantSpec(workflow_a, cluster, config),
            VariantSpec(
                workflow_b, cluster_b if cluster_b is not None else cluster, config
            ),
        ),
        base_seed=ens.base_seed,
        keep_trace_below=0,
        metrics_enabled=registry.enabled,
    )
    early_stopped = False
    with _ReplicationDriver(setup, ens.processes, ens.chunksize) as driver:
        for target in ens.round_targets():
            items = []
            for i in range(acc_a.count, target):
                items.append((0, i))
                items.append((1, i))
            for variant_idx, record, trace in driver.run(items):
                (acc_a if variant_idx == 0 else acc_b).add(record, trace)
            assert acc_a.settled() and acc_b.settled()
            if ens.ci_tol is None or acc_a.count >= ens.replications:
                continue
            deltas = RunningStat()
            for a, b in zip(acc_a.samples, acc_b.samples):
                deltas.push(b - a)
            halfwidth = mean_halfwidth(deltas.count, deltas.std, ens.ci_z)
            if acc_a.makespan.mean > 0 and (
                halfwidth <= ens.ci_tol * acc_a.makespan.mean
            ):
                early_stopped = True
                if registry.enabled:
                    registry.counter("ensemble.early_stops").inc()
                break
        pool_used = driver.pool_used
        cpu_s = driver.cpu_time_s

    comparison = paired_from_samples(
        label_a,
        acc_a.samples,
        label_b,
        acc_b.samples,
        base_seed=ens.base_seed,
        z=ens.ci_z,
        early_stopped=early_stopped,
        wall_time_s=time.perf_counter() - t0,
        cpu_time_s=cpu_s,
        processes=ens.processes,
        pool_used=pool_used,
    )
    if span is not None:
        tracer.finish(
            span,
            replications=comparison.replications,
            early_stopped=early_stopped,
            pooled=pool_used,
        )
    logger.debug("paired comparison: %s", comparison.describe())
    return comparison
