"""Streaming statistics for replication ensembles.

The ensemble engine aggregates thousands of replications without retaining
their traces, so its summaries must be *online*:

* :class:`RunningStat` — Welford mean/variance plus min/max, one value at
  a time, numerically stable;
* :class:`P2Quantile` — the P² algorithm (Jain & Chlamtac, CACM 1985):
  a constant-space estimate of an arbitrary quantile maintained from a
  stream, exact below five observations and O(1) per update after;
* order-statistic confidence intervals for sample quantiles
  (:func:`quantile_ci`) and the usual normal-theory interval for means
  (:func:`mean_halfwidth`), which drive the engine's sequential early
  stopping.

Everything here is plain float arithmetic applied in caller-defined order,
so feeding the same values in the same order is bit-reproducible — the
foundation of the ensemble's determinism contract.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import SpecificationError

__all__ = [
    "RunningStat",
    "P2Quantile",
    "sample_quantile",
    "quantile_ci",
    "mean_halfwidth",
]


class RunningStat:
    """Welford online mean/variance with min/max.

    ``std`` is the sample standard deviation (ddof=1), 0.0 below two
    observations.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def push(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 below two observations."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class P2Quantile:
    """P² streaming estimate of one quantile.

    Five markers track (min, p/2, p, (1+p)/2, max); each observation moves
    the middle markers towards their desired positions with a piecewise-
    parabolic height adjustment.  Until five observations have arrived the
    estimate is the exact sample quantile of the buffer.

    The update is a deterministic function of the observation *sequence*:
    two streams with identical values in identical order produce
    bit-identical marker state.
    """

    __slots__ = ("p", "_count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise SpecificationError(f"quantile must be in (0, 1): {p}")
        self.p = p
        self._count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._rates = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    @property
    def count(self) -> int:
        return self._count

    def push(self, value: float) -> None:
        self._count += 1
        if self._count <= 5:
            self._heights.append(value)
            self._heights.sort()
            return
        q, n = self._heights, self._positions
        # Locate the cell and clamp the extremes.
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value >= q[4]:
            q[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= q[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._desired[i] += self._rates[i]
        # Nudge the three middle markers towards their desired positions.
        for i in (1, 2, 3):
            d = self._desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step
        return

    def _parabolic(self, i: int, d: float) -> float:
        # Denominator safety: marker positions are integer-valued floats
        # that stay *strictly* increasing — an adjustment of ±1 requires a
        # gap > 1 (i.e. ≥ 2) in the move direction, and new-observation
        # increments only widen gaps — so every position difference below
        # is ≥ 1.  Heights may collapse (constant/duplicate-heavy streams);
        # then this candidate equals q[i], fails the caller's strict-order
        # guard, and the linear fallback keeps the markers sorted.  Pinned
        # by tests/ensemble/test_quantiles.py::TestP2Adversarial.
        q, n = self._heights, self._positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._heights, self._positions
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        if self._count == 0:
            return 0.0
        if self._count <= 5:
            return sample_quantile(self._heights, self.p)
        return self._heights[2]


def sample_quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation sample quantile of an ascending sequence.

    Matches ``numpy.quantile``'s default (``linear``) method.
    """
    if not sorted_values:
        raise SpecificationError("quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise SpecificationError(f"quantile must be in [0, 1]: {q}")
    position = (len(sorted_values) - 1) * q
    lower = math.floor(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return sorted_values[lower] + fraction * (
        sorted_values[upper] - sorted_values[lower]
    )


def quantile_ci(
    sorted_values: Sequence[float], q: float, z: float = 1.96
) -> Tuple[float, float]:
    """Order-statistic confidence interval for the ``q`` sample quantile.

    The rank of the ``q`` quantile in an n-sample is Binomial(n, q); with
    the normal approximation the interval covers ranks
    ``n·q ± z·sqrt(n·q·(1-q))``, clamped to the sample.  For tail
    quantiles that a sample of this size cannot yet resolve (the upper
    rank falls past the maximum) the interval degrades to the full sample
    range — honest, and naturally wide enough to keep sequential stopping
    rules from firing early.
    """
    n = len(sorted_values)
    if n == 0:
        raise SpecificationError("confidence interval of an empty sample")
    if not 0.0 < q < 1.0:
        raise SpecificationError(f"quantile must be in (0, 1): {q}")
    spread = z * math.sqrt(n * q * (1.0 - q))
    lower_rank = int(math.floor(n * q - spread))
    upper_rank = int(math.ceil(n * q + spread)) + 1
    lower = sorted_values[max(0, min(n - 1, lower_rank - 1))]
    upper = sorted_values[max(0, min(n - 1, upper_rank - 1))]
    return lower, upper


def mean_halfwidth(count: int, std: float, z: float = 1.96) -> float:
    """Normal-theory half-width of a mean's confidence interval."""
    if count < 2:
        return math.inf
    return z * std / math.sqrt(count)
