"""Parallel Monte Carlo replication ensembles (see ``docs/performance.md``).

Turns the stochastic simulator into a distribution machine: N seeded
replications across a fork-once process pool, streamed into P² quantiles
and Welford summaries (no trace retention beyond K exemplars), with
sequential early stopping on the target quantile's CI and common-random-
number paired comparisons for what-if ranking.

Quickstart::

    from repro import EnsembleConfig, run_ensemble, paper_cluster, weblog_dag

    result = run_ensemble(
        weblog_dag(), paper_cluster(),
        ensemble=EnsembleConfig(replications=64, ci_tol=0.05, processes=8),
    )
    print(result.quantiles[0.95], result.ci)
"""

from repro.ensemble.compare import (
    PairedComparison,
    compare_paired,
    paired_from_samples,
)
from repro.ensemble.engine import (
    DEFAULT_QUANTILES,
    EnsembleConfig,
    EnsembleResult,
    EnsembleRunner,
    ReplicationRecord,
    VariantSpec,
    run_ensemble,
    run_replication,
)
from repro.ensemble.quantiles import (
    P2Quantile,
    RunningStat,
    mean_halfwidth,
    quantile_ci,
    sample_quantile,
)

__all__ = [
    "DEFAULT_QUANTILES",
    "EnsembleConfig",
    "EnsembleResult",
    "EnsembleRunner",
    "P2Quantile",
    "PairedComparison",
    "ReplicationRecord",
    "RunningStat",
    "VariantSpec",
    "compare_paired",
    "mean_halfwidth",
    "paired_from_samples",
    "quantile_ci",
    "run_ensemble",
    "run_replication",
    "sample_quantile",
]
