"""Parallel Monte Carlo replication engine for the simulator.

The BOE/Algorithm 1 estimators predict *expected* makespan; the simulator
that validates them is stochastic (seeded input-size skew, seeded failure
injection), so a single run is one sample of a distribution.  This engine
turns N seeded replications into that distribution — cheaply, in parallel
and deterministically:

* **Seed streaming** — replication *i* re-seeds the caller's
  :class:`~repro.simulator.engine.SimulationConfig` through
  :func:`~repro.simulator.seeding.replication_config`, a pure function of
  ``(base_seed, i)``, so any process may run any replication.
* **Fork-once shared setup** — the workflow/cluster/config triple is
  pickled once per worker at pool start-up; work items are bare
  ``(variant, index)`` integer pairs.
* **Streaming aggregation** — each replication reduces to a small
  :class:`ReplicationRecord` inside the worker; the parent folds records
  into P² quantile markers, Welford summaries and per-state duration
  summaries *in replication order* (an index-ordered reorder buffer), so
  no trace is retained beyond the configurable ``exemplars`` prefix.
* **Adaptive early stopping** — after each round the order-statistic CI of
  the target quantile is checked against ``ci_tol``; rounds are fixed by
  the config (never by the worker count), so the replication count at
  which an ensemble stops is itself deterministic.

Determinism contract: a given ``(base_seed, n)`` produces bit-identical
aggregates regardless of process count or chunk arrival order, enforced by
``tests/ensemble/test_engine.py`` against the serial path (mirroring the
sweep layer's parity contract).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.dag.workflow import Workflow
from repro.errors import SpecificationError
from repro.obs.context import clear_context
from repro.obs.metrics import get_metrics, snapshot_delta
from repro.obs.tracer import get_tracer
from repro.service.pool import (
    CancelCheck,
    ResilientPool,
    check_cancel,
    parent_cpu_clock,
)
from repro.service.shm import ShmHandle, pack as shm_pack, release as shm_release
from repro.service.shm import resolve_shared
from repro.simulator.engine import SimulationConfig, simulate
from repro.simulator.seeding import replication_seeds
from repro.simulator.trace import SimulationResult
from repro.ensemble.quantiles import (
    P2Quantile,
    RunningStat,
    quantile_ci,
    sample_quantile,
)

logger = logging.getLogger(__name__)

#: Quantiles every ensemble tracks with streaming P² markers.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


@dataclass(frozen=True)
class EnsembleConfig:
    """Knobs of one replication ensemble.

    Attributes:
        replications: hard maximum replication count (the full budget when
            early stopping is off).
        min_replications: hard minimum before early stopping may trigger.
        base_seed: root of the per-replication seed tree
            (:func:`~repro.simulator.seeding.replication_seeds`).
        target_quantile: the quantile whose confidence interval drives
            early stopping (and is reported with its CI).
        ci_tol: relative CI tolerance — stop once the target quantile's CI
            half-width is ``<= ci_tol * estimate``.  ``None`` disables
            early stopping (the full budget runs).
        ci_z: normal critical value of the CI (1.96 = 95 %).
        exemplars: how many full :class:`SimulationResult` traces survive
            (replications ``0..exemplars-1``) for Perfetto export; all
            other replications are reduced to records in the worker.
        processes: worker processes; 1 runs in-process.
        chunksize: work items per pool task; ``None`` picks
            ``ceil(n / (4 * processes))`` per batch.
        round_size: replications added per early-stopping round after the
            initial ``min_replications``; ``None`` uses
            ``min_replications``.  Rounds are a function of the config
            only, so early-stop decisions are identical for any process
            count.
    """

    replications: int = 64
    min_replications: int = 8
    base_seed: int = 42
    target_quantile: float = 0.95
    ci_tol: Optional[float] = None
    ci_z: float = 1.96
    exemplars: int = 1
    processes: int = 1
    chunksize: Optional[int] = None
    round_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise SpecificationError(
                f"replications must be >= 1: {self.replications}"
            )
        if not 1 <= self.min_replications <= self.replications:
            raise SpecificationError(
                "min_replications must be in [1, replications]: "
                f"{self.min_replications} vs {self.replications}"
            )
        if not 0.0 < self.target_quantile < 1.0:
            raise SpecificationError(
                f"target quantile must be in (0, 1): {self.target_quantile}"
            )
        if self.ci_tol is not None and self.ci_tol <= 0.0:
            raise SpecificationError(f"ci_tol must be > 0: {self.ci_tol}")
        if self.ci_z <= 0.0:
            raise SpecificationError(f"ci_z must be > 0: {self.ci_z}")
        if self.exemplars < 0:
            raise SpecificationError(f"exemplars must be >= 0: {self.exemplars}")
        if self.processes < 1:
            raise SpecificationError(f"processes must be >= 1: {self.processes}")
        if self.chunksize is not None and self.chunksize < 1:
            raise SpecificationError(f"chunksize must be >= 1: {self.chunksize}")
        if self.round_size is not None and self.round_size < 1:
            raise SpecificationError(
                f"round_size must be >= 1: {self.round_size}"
            )

    def round_targets(self) -> List[int]:
        """Cumulative replication counts at which early stopping is checked.

        ``[min_replications, min+round, min+2*round, ..., replications]``
        — a pure function of the config, never of the machine.
        """
        step = self.round_size or self.min_replications
        targets = [min(self.min_replications, self.replications)]
        while targets[-1] < self.replications:
            targets.append(min(self.replications, targets[-1] + step))
        return targets

    def tracked_quantiles(self) -> Tuple[float, ...]:
        """The streaming quantile set: defaults plus the target."""
        if self.target_quantile in DEFAULT_QUANTILES:
            return DEFAULT_QUANTILES
        return tuple(sorted((*DEFAULT_QUANTILES, self.target_quantile)))


@dataclass(frozen=True)
class ReplicationRecord:
    """The streaming reduction of one replication — all a worker returns
    for a non-exemplar run."""

    index: int
    skew_seed: int
    failure_seed: int
    makespan: float
    tasks: int
    states: int
    failed_attempts: int
    state_durations: Tuple[float, ...]


@dataclass(frozen=True)
class EnsembleResult:
    """Distributional outcome of one ensemble.

    All fields except the wall/CPU telemetry are covered by the
    determinism contract: identical for a given ``(config, workflow)``
    across process counts and chunk orders.
    """

    workflow: str
    replications: int
    max_replications: int
    early_stopped: bool
    base_seed: int
    target_quantile: float
    ci: Tuple[float, float]
    quantiles: Dict[float, float]
    makespan: Dict[str, float]
    failed_attempts: Dict[str, float]
    state_durations: Tuple[Dict[str, float], ...]
    samples: Tuple[float, ...]
    exemplars: Tuple[SimulationResult, ...] = ()
    wall_time_s: float = 0.0
    cpu_time_s: float = 0.0
    processes: int = 1
    pool_used: bool = False

    def quantile(self, q: float) -> float:
        """Exact sample quantile of the retained makespan scalars."""
        return sample_quantile(sorted(self.samples), q)

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci[1] - self.ci[0]) / 2.0

    @property
    def ci_rel_halfwidth(self) -> float:
        """CI half-width relative to the target-quantile estimate."""
        estimate = self.quantiles[self.target_quantile]
        return self.ci_halfwidth / estimate if estimate > 0 else 0.0

    def describe(self) -> str:
        """One-line summary for CLI / benchmark output."""
        stopped = " (early stop)" if self.early_stopped else ""
        return (
            f"{self.replications}/{self.max_replications} replications"
            f"{stopped} in {self.wall_time_s * 1000:.0f} ms "
            f"(cpu {self.cpu_time_s * 1000:.0f} ms, {self.processes} "
            f"proc{'s' if self.processes != 1 else ''}"
            f"{', pooled' if self.pool_used else ''}); makespan "
            f"p50 {self.quantiles[0.5]:.1f}s p95 {self.quantiles[0.95]:.1f}s "
            f"p99 {self.quantiles[0.99]:.1f}s, "
            f"P{self.target_quantile * 100:g} CI "
            f"[{self.ci[0]:.1f}, {self.ci[1]:.1f}]s"
        )


@dataclass(frozen=True)
class VariantSpec:
    """One simulated configuration: what a replication index is applied to."""

    workflow: Workflow
    cluster: Cluster
    config: SimulationConfig


def run_replication(
    variant: VariantSpec, base_seed: int, index: int, keep_trace: bool
) -> Tuple[ReplicationRecord, Optional[SimulationResult]]:
    """Execute one replication and reduce it to its record.

    The full trace is dropped inside the worker unless ``keep_trace`` —
    this is the streaming-aggregation boundary.
    """
    skew_seed, failure_seed = replication_seeds(base_seed, index)
    # Workers run the columnar engine whenever the variant asks for the
    # default loop: the two are trace-parity twins
    # (tests/simulator/test_columnar_parity.py) and a replication is
    # reduced to aggregates anyway, so the ensemble gets the flat-array
    # throughput for free.  An explicit "reference" choice is honoured —
    # that is the oracle configuration.
    engine = "columnar" if variant.config.engine == "fast" else variant.config.engine
    config = replace(
        variant.config,
        engine=engine,
        skew=replace(variant.config.skew, seed=skew_seed),
        failures=replace(variant.config.failures, seed=failure_seed),
    )
    result = simulate(variant.workflow, variant.cluster, config)
    record = ReplicationRecord(
        index=index,
        skew_seed=skew_seed,
        failure_seed=failure_seed,
        makespan=result.makespan,
        tasks=result.task_count,
        states=len(result.states),
        failed_attempts=len(result.failed_attempts),
        state_durations=tuple(s.duration for s in result.states),
    )
    return record, (result if keep_trace else None)


class _Accumulator:
    """Index-ordered streaming aggregation of replication records.

    Records may arrive in any order (pool chunks complete when they
    complete); a reorder buffer releases them strictly by replication
    index, so every P²/Welford update sequence — and therefore every
    aggregate bit — is independent of chunking.
    """

    def __init__(self, quantiles: Sequence[float], counter=None):
        self._p2 = {q: P2Quantile(q) for q in quantiles}
        self.makespan = RunningStat()
        self.failed = RunningStat()
        self.states: List[RunningStat] = []
        self.samples: List[float] = []
        self.exemplars: Dict[int, SimulationResult] = {}
        self._pending: Dict[
            int, Tuple[ReplicationRecord, Optional[SimulationResult]]
        ] = {}
        self._next = 0
        self._counter = counter

    @property
    def count(self) -> int:
        return self._next

    def add(
        self, record: ReplicationRecord, trace: Optional[SimulationResult]
    ) -> None:
        self._pending[record.index] = (record, trace)
        while self._next in self._pending:
            self._consume(*self._pending.pop(self._next))

    def _consume(
        self, record: ReplicationRecord, trace: Optional[SimulationResult]
    ) -> None:
        assert record.index == self._next
        self._next += 1
        self.samples.append(record.makespan)
        self.makespan.push(record.makespan)
        self.failed.push(float(record.failed_attempts))
        for p2 in self._p2.values():
            p2.push(record.makespan)
        for i, duration in enumerate(record.state_durations):
            if i >= len(self.states):
                self.states.append(RunningStat())
            self.states[i].push(duration)
        if trace is not None:
            self.exemplars[record.index] = trace
        if self._counter is not None:
            self._counter.inc()

    def settled(self) -> bool:
        """True when no out-of-order record is still buffered."""
        return not self._pending

    def quantiles(self) -> Dict[float, float]:
        return {q: p2.value for q, p2 in self._p2.items()}

    def target_ci(self, q: float, z: float) -> Tuple[float, float]:
        return quantile_ci(sorted(self.samples), q, z)


# -- worker protocol (fork-once shared setup) ------------------------------------------


@dataclass(frozen=True)
class _EnsembleSetup:
    """Everything a worker needs, shipped once at pool start-up."""

    variants: Tuple[VariantSpec, ...]
    base_seed: int
    keep_trace_below: int
    metrics_enabled: bool
    trace_enabled: bool = False


_WORKER_SETUP: Optional[_EnsembleSetup] = None

#: One work item: (variant index, replication index).
_Item = Tuple[int, int]

_MetricsDelta = Dict[str, Dict[str, Any]]

#: Picklable span rows (:meth:`repro.obs.tracer.Tracer.export_since`).
_SpanRows = List[Dict[str, Any]]

#: What every pooled chunk evaluator returns.
_ChunkOutcome = Tuple[
    List[Tuple[int, ReplicationRecord, Optional[SimulationResult]]],
    float,
    _MetricsDelta,
    _SpanRows,
]


def _ensemble_worker_init(setup: _EnsembleSetup) -> None:
    global _WORKER_SETUP
    _WORKER_SETUP = setup
    # Forked workers inherit the submitting thread's request context and
    # open-span stack; start trace-clean so worker spans stay unclaimed
    # until the parent stamps the right trace id at ingest time.
    clear_context()
    get_tracer().clear()
    if setup.metrics_enabled:
        # Arm the worker registry before the first simulation constructs
        # its instruments (hooks bind at construction time).
        get_metrics().enable()
    if setup.trace_enabled:
        get_tracer().enable()


def _evaluate_items(
    setup: _EnsembleSetup, items: Sequence[_Item]
) -> List[Tuple[int, ReplicationRecord, Optional[SimulationResult]]]:
    out = []
    for variant_idx, index in items:
        record, trace = run_replication(
            setup.variants[variant_idx],
            setup.base_seed,
            index,
            keep_trace=index < setup.keep_trace_below,
        )
        out.append((variant_idx, record, trace))
    return out


def _worker_chunk_telemetry(
    setup: _EnsembleSetup, items: Sequence[_Item]
) -> _ChunkOutcome:
    """Worker-side chunk evaluation with the full telemetry envelope.

    Captures the chunk's CPU share, metrics delta (when the parent armed
    ``metrics_enabled``) and tracer spans (when the parent armed
    ``trace_enabled``): the per-replication simulator spans are wrapped in
    one ``ensemble.chunk`` span and exported as picklable rows for the
    parent to :meth:`~repro.obs.tracer.Tracer.ingest`.
    """
    registry = get_metrics()
    before = registry.snapshot() if setup.metrics_enabled else {}
    tracer = get_tracer()
    if setup.trace_enabled and not tracer.enabled:
        # Foreign pools (the shared service pool) may not have armed the
        # worker tracer at init; the setup knows the parent wants spans.
        tracer.enable()
    capture = setup.trace_enabled and tracer.enabled
    span_mark = tracer.span_count if capture else 0
    span = (
        tracer.begin("ensemble.chunk", replications=len(items))
        if capture
        else None
    )
    cpu0 = time.process_time()
    outputs = _evaluate_items(setup, items)
    cpu_s = time.process_time() - cpu0
    tracer.finish(span)
    spans = tracer.export_since(span_mark) if capture else []
    metrics = (
        snapshot_delta(registry.snapshot(), before)
        if setup.metrics_enabled
        else {}
    )
    return outputs, cpu_s, metrics, spans


def _ensemble_chunk(items: Sequence[_Item]) -> _ChunkOutcome:
    """Evaluate one chunk in a pool worker; ships records + telemetry home."""
    setup = _WORKER_SETUP
    assert setup is not None, "ensemble worker used before initialisation"
    return _worker_chunk_telemetry(setup, items)


def simulate_replication_chunk(
    payload: Tuple[VariantSpec, int, Tuple[int, ...], int],
) -> _ChunkOutcome:
    """Self-contained chunk evaluator for *foreign* pools.

    Unlike :func:`_ensemble_chunk` this carries its whole context in the
    payload, so any live :class:`~concurrent.futures.ProcessPoolExecutor`
    (e.g. a :class:`~repro.sweep.SweepRunner`'s estimator pool) can serve
    replication work without being rebuilt.  Metrics deltas and tracer
    spans are captured whenever the worker's registry/tracer is armed
    (whichever pool initialised this worker decided that), and folded in
    by the caller through the obs ``merge()``/``ingest()`` paths.
    """
    variant, base_seed, indices, keep_trace_below = payload
    registry = get_metrics()
    setup = _EnsembleSetup(
        variants=(variant,),
        base_seed=base_seed,
        keep_trace_below=keep_trace_below,
        metrics_enabled=registry.enabled,
        trace_enabled=get_tracer().enabled,
    )
    return _worker_chunk_telemetry(setup, [(0, index) for index in indices])


def serial_replication_chunk(
    payload: Tuple[VariantSpec, int, Tuple[int, ...], int],
) -> _ChunkOutcome:
    """Parent-side serial twin of :func:`simulate_replication_chunk`.

    Used as the crash/cancellation fallback when a chunk cannot (or should
    not) ride a pool.  Reports **zero** CPU, an empty metrics delta and no
    span rows: the work runs on the caller's own thread, so the caller's
    ``parent_cpu_clock`` delta already accounts the CPU, and the parent
    registry/tracer record counters and spans directly — shipping them
    again would double-count.
    """
    variant, base_seed, indices, keep_trace_below = payload
    outputs = _evaluate_items(
        _EnsembleSetup(
            variants=(variant,),
            base_seed=base_seed,
            keep_trace_below=keep_trace_below,
            metrics_enabled=get_metrics().enabled,
        ),
        [(0, index) for index in indices],
    )
    return outputs, 0.0, {}, []


def _setup_chunk(payload: Tuple[Any, Sequence[_Item]]) -> _ChunkOutcome:
    """Self-contained chunk evaluator for *foreign* (shared) pools.

    The setup ships inside the payload — raw, or as a
    :class:`~repro.service.shm.ShmHandle` the parent packed once for the
    whole run (:func:`~repro.service.shm.resolve_shared` memoises the
    deserialised setup worker-side).  Either way a generic service pool —
    one whose workers were not initialised with this ensemble's setup —
    can serve replication chunks.
    """
    setup, items = payload
    return _worker_chunk_telemetry(resolve_shared(setup), items)


class _ReplicationDriver:
    """Runs work items serially or across a fork-once pool.

    Owns the pool lifecycle (unless borrowing a shared
    :class:`~repro.service.pool.ResilientPool`) and the telemetry
    plumbing; the round / early-stopping policy lives with the caller.
    An unpicklable setup (closure-laden test stubs) degrades to the
    serial path with a WARNING + ``pool.serial_fallback`` count, and a
    worker crash mid-map finishes the batch serially (``pool.broken``) —
    correctness never depends on the pool.
    """

    def __init__(
        self,
        setup: _EnsembleSetup,
        processes: int,
        chunksize: Optional[int],
        pool: Optional[ResilientPool] = None,
    ):
        self._setup = setup
        self._chunksize = chunksize
        if pool is not None:
            self._pool = pool
            self._own_pool = False
            self._processes = max(1, pool.processes)
        else:
            self._pool = ResilientPool(
                processes,
                initializer=_ensemble_worker_init,
                initargs=(setup,),
                label="ensemble",
            )
            self._own_pool = True
            self._processes = processes
        self.cpu_time_s = 0.0
        self.pool_used = False
        # Borrowed-pool setup transport (see SweepRunner._shipped_context):
        # packed lazily on the first pooled batch, released with the driver.
        self._shm_handle: Any = None
        self._pool_payload: Any = None

    @property
    def processes(self) -> int:
        return self._processes

    def __enter__(self) -> "_ReplicationDriver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._own_pool:
            self._pool.close()
        if isinstance(self._shm_handle, ShmHandle):
            shm_release(self._shm_handle)
        self._shm_handle = None
        self._pool_payload = None

    def _shipped_setup(self) -> Any:
        """The borrowed-pool chunk payload's setup: a shared-memory handle
        when the setup is large enough to park, the raw setup otherwise."""
        if self._pool_payload is None:
            handle = shm_pack(self._setup, label="ensemble")
            self._shm_handle = handle if handle is not None else False
            self._pool_payload = handle if handle is not None else self._setup
        return self._pool_payload

    def run(
        self, items: Sequence[_Item], cancel: Optional[CancelCheck] = None
    ) -> Iterator[Tuple[int, ReplicationRecord, Optional[SimulationResult]]]:
        if not items:
            return iter(())
        if self._processes > 1 and len(items) > 1:
            pooled = self._run_pooled(items, cancel)
            if pooled is not None:
                return pooled
        check_cancel(cancel)
        cpu0 = parent_cpu_clock()
        outputs = _evaluate_items(self._setup, items)
        self.cpu_time_s += parent_cpu_clock() - cpu0
        return iter(outputs)

    def _serial_chunk(self, items: Sequence[_Item]) -> _ChunkOutcome:
        # Crash-fallback chunk run in the parent: zero CPU / empty metrics
        # / no spans (the surrounding thread-clock delta, the parent
        # registry and the parent tracer already account this work
        # directly).
        return _evaluate_items(self._setup, items), 0.0, {}, []

    def _run_pooled(
        self, items: Sequence[_Item], cancel: Optional[CancelCheck] = None
    ) -> Optional[Iterator[Tuple[int, ReplicationRecord, Optional[SimulationResult]]]]:
        if self._pool.executor() is None:
            return None
        chunksize = self._chunksize or max(
            1, -(-len(items) // (4 * self._processes))
        )
        chunks = [
            items[i : i + chunksize] for i in range(0, len(items), chunksize)
        ]
        if self._own_pool:
            # Fork-once workers hold the setup already.
            fn: Callable[[Any], Any] = _ensemble_chunk
            payloads: List[Any] = list(chunks)
            serial_fn: Callable[[Any], Any] = self._serial_chunk
        else:
            # Borrowed (service) pool: ship the setup with every chunk —
            # as a shared-memory handle when large enough to park (packed
            # once per driver), raw otherwise.
            fn = _setup_chunk
            shipped = self._shipped_setup()
            payloads = [(shipped, chunk) for chunk in chunks]
            serial_fn = lambda payload: self._serial_chunk(payload[1])  # noqa: E731
        registry = get_metrics()
        tracer = get_tracer()
        # Parent CPU on the *thread* clock: concurrent service jobs drive
        # this loop from their own threads, and a process-wide clock would
        # attribute job A's parent work to job B (the old process_time bug).
        cpu0 = parent_cpu_clock()
        outputs: List[
            Tuple[int, ReplicationRecord, Optional[SimulationResult]]
        ] = []
        for chunk_out, chunk_cpu, chunk_metrics, chunk_spans in self._pool.run_chunks(
            fn, payloads, serial_fn=serial_fn, cancel=cancel
        ):
            outputs.extend(chunk_out)
            self.cpu_time_s += chunk_cpu
            if chunk_metrics:
                registry.merge(chunk_metrics)
            if chunk_spans:
                # Re-anchor worker spans under the open ``ensemble.run``
                # span (this runs on the run's thread); inside the service
                # the active request context stamps its trace id too.
                tracer.ingest(chunk_spans)
        self.cpu_time_s += parent_cpu_clock() - cpu0
        self.pool_used = True
        return iter(outputs)


class EnsembleRunner:
    """Replication-ensemble engine bound to one cluster + simulation config.

    Args:
        cluster: the simulated cluster.
        config: base :class:`SimulationConfig`; its skew/failure *shapes*
            apply to every replication while the seeds are re-derived per
            replication.  ``None`` uses the defaults.
        ensemble: the :class:`EnsembleConfig` policy.
        pool: a *shared* :class:`~repro.service.pool.ResilientPool` to
            borrow instead of owning one per run (the service multiplexes
            every job over a single pool).  Chunks then ship their own
            setup and ``ensemble.processes`` is superseded by the pool's
            size.
    """

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SimulationConfig] = None,
        ensemble: Optional[EnsembleConfig] = None,
        pool: Optional[ResilientPool] = None,
    ):
        self._cluster = cluster
        self._config = config if config is not None else SimulationConfig()
        self._ensemble = ensemble if ensemble is not None else EnsembleConfig()
        self._pool = pool

    @property
    def ensemble_config(self) -> EnsembleConfig:
        return self._ensemble

    def run(
        self, workflow: Workflow, cancel: Optional[CancelCheck] = None
    ) -> EnsembleResult:
        """Run the ensemble for ``workflow`` and aggregate its distribution.

        ``cancel`` is polled between replication chunks (see
        :data:`~repro.service.pool.CancelCheck`): a truthy return raises
        :class:`~repro.errors.JobCancelledError`; the check may instead
        raise its own typed error (the service's cooperative deadlines).
        """
        ens = self._ensemble
        t0 = time.perf_counter()
        tracer = get_tracer()
        span = (
            tracer.begin(
                "ensemble.run",
                workflow=workflow.name,
                max_replications=ens.replications,
                processes=ens.processes,
            )
            if tracer.enabled
            else None
        )
        registry = get_metrics()
        replication_ctr = (
            registry.counter("ensemble.replications") if registry.enabled else None
        )
        accumulator = _Accumulator(ens.tracked_quantiles(), replication_ctr)
        setup = _EnsembleSetup(
            variants=(VariantSpec(workflow, self._cluster, self._config),),
            base_seed=ens.base_seed,
            keep_trace_below=ens.exemplars,
            metrics_enabled=registry.enabled,
            trace_enabled=tracer.enabled,
        )
        early_stopped = False
        with _ReplicationDriver(
            setup, ens.processes, ens.chunksize, pool=self._pool
        ) as driver:
            for target in ens.round_targets():
                items = [(0, i) for i in range(accumulator.count, target)]
                for _, record, trace in driver.run(items, cancel):
                    accumulator.add(record, trace)
                assert accumulator.settled()
                if ens.ci_tol is None or accumulator.count >= ens.replications:
                    continue
                lo, hi = accumulator.target_ci(ens.target_quantile, ens.ci_z)
                estimate = sample_quantile(
                    sorted(accumulator.samples), ens.target_quantile
                )
                if estimate > 0 and (hi - lo) / 2.0 <= ens.ci_tol * estimate:
                    early_stopped = True
                    if registry.enabled:
                        registry.counter("ensemble.early_stops").inc()
                    break
            pool_used = driver.pool_used
            cpu_s = driver.cpu_time_s
            processes = driver.processes

        result = EnsembleResult(
            workflow=workflow.name,
            replications=accumulator.count,
            max_replications=ens.replications,
            early_stopped=early_stopped,
            base_seed=ens.base_seed,
            target_quantile=ens.target_quantile,
            ci=accumulator.target_ci(ens.target_quantile, ens.ci_z),
            quantiles=accumulator.quantiles(),
            makespan=accumulator.makespan.snapshot(),
            failed_attempts=accumulator.failed.snapshot(),
            state_durations=tuple(s.snapshot() for s in accumulator.states),
            samples=tuple(accumulator.samples),
            exemplars=tuple(
                accumulator.exemplars[i] for i in sorted(accumulator.exemplars)
            ),
            wall_time_s=time.perf_counter() - t0,
            cpu_time_s=cpu_s,
            processes=processes,
            pool_used=pool_used,
        )
        if span is not None:
            tracer.finish(
                span,
                replications=result.replications,
                early_stopped=result.early_stopped,
                pooled=result.pool_used,
            )
        logger.debug("ensemble %s: %s", workflow.name, result.describe())
        return result


def run_ensemble(
    workflow: Workflow,
    cluster: Cluster,
    config: Optional[SimulationConfig] = None,
    ensemble: Optional[EnsembleConfig] = None,
) -> EnsembleResult:
    """Convenience wrapper: build an :class:`EnsembleRunner` and run it."""
    return EnsembleRunner(cluster, config=config, ensemble=ensemble).run(workflow)
