"""Hot-cached, coalesced estimate serving.

One estimate costs milliseconds (the paper's §V overhead result), so a
prediction service is dominated not by the model but by *redundancy*:
many tenants asking about the same workflow structure at once.  This
module removes that redundancy in two layers:

* **Hot cache** — finished estimates are kept in an LRU keyed by the
  workflow's *pinned structural hash* (PR 4 pins ``hash(workflow)`` at
  first use, so the key costs nothing after the first request), the
  cluster hash and the variant.  Workflows and clusters are frozen
  value-hashed dataclasses, so two requests naming the same structure
  collide on the key no matter who sent them.
* **Single-flight coalescer** — concurrent misses for the same key share
  one in-flight computation, and concurrent misses for *different* keys
  are drained into one batch through a single memoised
  :class:`~repro.sweep.SweepRunner` evaluation, whose batched BOE kernel
  (``BOEModel.solve_batch``) and candidate memo turn N concurrent
  requests into far fewer than N solves.  A single dedicated estimator
  thread owns the runner, so its caches need no locking.

Counters (armed registry only): ``service.estimate_requests``,
``service.cache_hits``, ``service.coalesced``, ``service.batches``, plus the
labeled family ``service.estimates{served=cache|coalesced|computed}``.  Each
request also opens an ``estimate.request`` span on the calling thread, so
estimate serving shows up inside the HTTP request's flame.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.core.distributions import Variant
from repro.dag.workflow import Workflow
from repro.errors import ServiceError
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer


class EstimateKey(NamedTuple):
    """Cache identity of one estimate request.

    Hashes stand in for the full structures: workflows and clusters are
    frozen dataclasses hashing by value (and the workflow hash is pinned,
    see :mod:`repro.dag.workflow`), so equal keys mean structurally equal
    requests.
    """

    workflow: int
    cluster: int
    variant: str


class EstimateService:
    """Serve estimate requests through a hot cache and a request coalescer.

    Thread-safe: any number of request threads call :meth:`estimate`
    concurrently; one internal estimator thread drains pending misses in
    batches through a memoised :class:`~repro.sweep.SweepRunner` per
    variant.

    Args:
        cluster: default cluster for requests without an override.
        policy: scheduler policy forwarded to the runners.
        capacity: LRU hot-cache entries to retain.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy: str = "drf",
        capacity: int = 1024,
    ):
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1: {capacity}")
        self._cluster = cluster
        self._policy = policy
        self._capacity = capacity
        self._cache: "OrderedDict[EstimateKey, Dict[str, Any]]" = OrderedDict()
        self._inflight: Dict[EstimateKey, Future] = {}
        self._pending: List[Tuple[EstimateKey, Workflow, Optional[Cluster], Variant]] = []
        self._runners: Dict[str, Any] = {}
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain_loop, name="estimate-service", daemon=True
        )
        self._thread.start()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join()
        for runner in self._runners.values():
            runner.close()

    def __enter__(self) -> "EstimateService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def cache_size(self) -> int:
        with self._cond:
            return len(self._cache)

    # -- the request path --------------------------------------------------------

    def estimate(
        self,
        workflow: Workflow,
        cluster: Optional[Cluster] = None,
        variant: Variant = Variant.MEAN,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Estimate ``workflow``, served from cache / coalesced when possible.

        Returns the response payload with a ``served`` field recording how
        this particular request was satisfied: ``"cache"`` (hot-cache
        hit), ``"coalesced"`` (joined an in-flight computation) or
        ``"computed"`` (this request triggered the evaluation).  The
        estimate values themselves are bit-identical across all three
        paths — and to a direct :func:`repro.core.estimator.estimate_workflow`
        call — because every path runs (or replays) the same memoised
        estimator.
        """
        registry = get_metrics()
        if registry.enabled:
            registry.counter("service.estimate_requests").inc()
        # Request-thread span: the computation itself runs on the estimator
        # thread (outside any one request's context, since a batch serves
        # many), so this span is what places the estimate — and which path
        # served it — inside the calling request's flame.
        with get_tracer().span("estimate.request", variant=variant.value) as span:
            key = EstimateKey(
                hash(workflow),
                hash(cluster if cluster is not None else self._cluster),
                variant.value,
            )
            with self._cond:
                if self._closed:
                    raise ServiceError("estimate service is closed")
                hit = self._cache.get(key)
                if hit is not None:
                    self._cache.move_to_end(key)
                    if registry.enabled:
                        registry.counter("service.cache_hits").inc()
                        registry.labeled_counter(
                            "service.estimates", served="cache"
                        ).inc()
                    span.set(served="cache")
                    return dict(hit, served="cache")
                future = self._inflight.get(key)
                if future is not None:
                    served = "coalesced"
                    if registry.enabled:
                        registry.counter("service.coalesced").inc()
                else:
                    served = "computed"
                    future = Future()
                    self._inflight[key] = future
                    self._pending.append((key, workflow, cluster, variant))
                    self._cond.notify()
            if registry.enabled:
                registry.labeled_counter("service.estimates", served=served).inc()
            span.set(served=served)
            return dict(future.result(timeout), served=served)

    # -- the estimator thread ----------------------------------------------------

    def _runner_for(self, variant: Variant):
        runner = self._runners.get(variant.value)
        if runner is None:
            from repro.sweep.runner import SweepRunner

            # Serial runner: an estimate is milliseconds, so the win is the
            # shared memo/trajectory caches, not a process pool.
            runner = SweepRunner(
                self._cluster, variant=variant, policy=self._policy
            )
            self._runners[variant.value] = runner
        return runner

    def _drain_loop(self) -> None:
        from repro.sweep.runner import Candidate

        registry = get_metrics()
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                batch = self._pending
                self._pending = []
            if registry.enabled:
                registry.counter("service.batches").inc()
            by_variant: "OrderedDict[str, List]" = OrderedDict()
            for entry in batch:
                by_variant.setdefault(entry[3].value, []).append(entry)
            for entries in by_variant.values():
                variant = entries[0][3]
                candidates = [
                    Candidate(workflow, cluster=cluster)
                    for _, workflow, cluster, _ in entries
                ]
                try:
                    results = self._runner_for(variant).evaluate(candidates)
                except BaseException as exc:  # pragma: no cover - defensive
                    # Infeasible candidates are captured per-result, so
                    # this only fires on an estimator bug; propagate it to
                    # every waiter rather than wedging their futures.
                    self._fail_entries(entries, exc)
                    continue
                for (key, *_), result in zip(entries, results):
                    payload = {
                        "workflow": result.label,
                        "ok": result.ok,
                        "total_time_s": result.total_time_s,
                        "states": result.states,
                        "overhead_ms": result.overhead_s * 1000.0,
                        "variant": variant.value,
                        "error": result.error,
                    }
                    with self._cond:
                        future = self._inflight.pop(key)
                        if result.ok:
                            self._cache[key] = payload
                            while len(self._cache) > self._capacity:
                                self._cache.popitem(last=False)
                    future.set_result(payload)

    def _fail_entries(self, entries, exc: BaseException) -> None:
        futures = []
        with self._cond:
            for key, *_ in entries:
                future = self._inflight.pop(key, None)
                if future is not None:
                    futures.append(future)
        for future in futures:
            future.set_exception(exc)
