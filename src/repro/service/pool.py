"""Crash-tolerant process-pool engine shared by sweeps, ensembles and jobs.

Both :class:`~repro.sweep.SweepRunner` and
:class:`~repro.ensemble.EnsembleRunner` fan chunks of pure work out over a
``ProcessPoolExecutor``; the service multiplexes *many* such jobs over one
pool.  All of them need the same three guarantees, centralised here:

* **Loud serial degradation.**  A context that does not pickle (closures,
  open handles) cannot ride a pool.  The pickle probe that detects this
  used to swallow the reason silently — an order-of-magnitude perf cliff
  with no trace.  :meth:`ResilientPool.executor` now logs the degradation
  at WARNING and counts ``pool.serial_fallback`` in the metrics registry.
* **Crash recovery.**  A worker that dies mid-map (OOM kill, ``os._exit``,
  a segfaulting extension) raises :class:`BrokenProcessPool` out of
  ``executor.map`` and poisons the executor.  :meth:`ResilientPool.run_chunks`
  catches the crash (and mid-map :class:`pickle.PicklingError` for
  unpicklable *items*), marks the pool broken (``pool.broken`` counter),
  and finishes the not-yet-yielded chunks on the caller's serial path —
  callers always receive complete, deterministic results.  With
  ``respawn=True`` (the service configuration) the next batch builds a
  fresh executor (``pool.respawns``); without it the pool stays serial,
  which is the right behaviour for a short-lived runner.
* **Cooperative cancellation.**  Chunks are submitted through a bounded
  window (not ``executor.map``'s eager submission), so a cancelled job
  stops feeding the pool immediately, cancels its queued futures and
  releases the slots to other jobs instead of draining its whole batch.

The work functions themselves stay with their owners (the sweep/ensemble
modules define the chunk evaluators); this module owns only the lifecycle
and the failure semantics.

A fourth concern — *what* the chunks carry — layers on top in
:mod:`repro.service.shm`: jobs riding a borrowed pool would otherwise
pickle their whole read-only context into every chunk payload, so the
sweep/ensemble evaluators park that context in a shared-memory segment
once per job and ship a tiny handle instead, with worker-side
memoisation and bit-transparent fallback to raw pickling.  The pool
itself is oblivious to the transport: payloads are opaque here.
"""

from __future__ import annotations

import logging
import pickle
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import JobCancelledError
from repro.obs.metrics import get_metrics

logger = logging.getLogger(__name__)

#: Callable polled between chunks: returns truthy to cancel the batch
#: cooperatively (mapped to :class:`~repro.errors.JobCancelledError`), or
#: raises its own :class:`~repro.errors.ReproError` (e.g. a deadline check
#: raising :class:`~repro.errors.JobTimeoutError`).
CancelCheck = Callable[[], bool]


def check_cancel(cancel: Optional[CancelCheck]) -> None:
    """Poll a cancellation check; raise :class:`JobCancelledError` if set."""
    if cancel is not None and cancel():
        raise JobCancelledError("job cancelled")


class ResilientPool:
    """A lazily-built, probe-guarded, crash-surviving process pool.

    Args:
        processes: worker process count; ``<= 1`` never builds an executor.
        initializer / initargs: forwarded to the executor; ``initargs`` are
            also the pickle-probe payload (they are what actually ships).
        label: appears in log lines and telemetry so concurrent pools are
            distinguishable ("sweep", "ensemble", "service").
        respawn: rebuild a fresh executor on the batch *after* a worker
            crash instead of staying serial forever.
    """

    def __init__(
        self,
        processes: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        label: str = "pool",
        respawn: bool = False,
    ):
        self._processes = processes
        self._initializer = initializer
        self._initargs = initargs
        self._label = label
        self._respawn = respawn
        self._executor: Optional[ProcessPoolExecutor] = None
        self._serial_only = False  # probe failed: permanently serial
        self._broken = False  # a worker crashed since the last (re)build
        self.used = False  # did any batch actually run pooled?

    # -- lifecycle ---------------------------------------------------------------

    @property
    def processes(self) -> int:
        return self._processes

    @property
    def broken(self) -> bool:
        """A worker crash poisoned the current executor."""
        return self._broken

    @property
    def serial_only(self) -> bool:
        """The pickle probe rejected the worker context."""
        return self._serial_only

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ResilientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def executor(self) -> Optional[ProcessPoolExecutor]:
        """The live executor, built on first use; ``None`` means serial.

        The first call pickle-probes ``initargs`` — the worker context that
        would ship at pool start-up.  A context that cannot pickle degrades
        to the serial path *loudly*: the reason lands in the log at WARNING
        and ``pool.serial_fallback`` is counted, because silent degradation
        hides an order-of-magnitude throughput cliff.
        """
        if self._processes <= 1 or self._serial_only:
            return None
        if self._broken:
            if not self._respawn:
                return None
            self._broken = False
            self._executor = None
            registry = get_metrics()
            if registry.enabled:
                registry.counter("pool.respawns").inc()
            logger.info("%s pool: respawning after worker crash", self._label)
        if self._executor is None:
            try:
                pickle.dumps(self._initargs)
            except Exception as exc:
                self._serial_only = True
                registry = get_metrics()
                if registry.enabled:
                    registry.counter("pool.serial_fallback").inc()
                logger.warning(
                    "%s pool: worker context does not pickle (%s: %s); "
                    "degrading to the serial path — expect an order-of-"
                    "magnitude slowdown on multi-core machines",
                    self._label,
                    type(exc).__name__,
                    exc,
                )
                return None
            self._executor = ProcessPoolExecutor(
                max_workers=self._processes,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._executor

    # -- crash bookkeeping -------------------------------------------------------

    def _mark_broken(self, exc: BaseException) -> None:
        self._broken = True
        registry = get_metrics()
        if registry.enabled:
            registry.counter("pool.broken").inc()
        logger.warning(
            "%s pool: worker failure mid-map (%s: %s); completing the "
            "remaining chunks serially%s",
            self._label,
            type(exc).__name__,
            exc,
            " and respawning for the next batch" if self._respawn else "",
        )
        if self._executor is not None:
            # A broken executor shuts down without joining dead workers;
            # unpicklable-item failures leave it healthy, but the serial
            # tail will re-run everything pending anyway.
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- the resilient map -------------------------------------------------------

    def run_chunks(
        self,
        fn: Callable[[Any], Any],
        chunks: Sequence[Any],
        serial_fn: Optional[Callable[[Any], Any]] = None,
        cancel: Optional[CancelCheck] = None,
    ) -> Iterator[Any]:
        """Yield ``fn(chunk)`` per chunk, in order, surviving worker death.

        Chunks are submitted through a bounded window (two per worker) so a
        cooperative cancellation stops feeding the pool and cancels queued
        futures instead of draining the batch.  On
        :class:`BrokenProcessPool` / mid-map :class:`pickle.PicklingError`
        the pool is marked broken and every chunk not yet yielded is
        re-evaluated with ``serial_fn`` (default ``fn``) in the calling
        process — results stay complete and, because chunk evaluators are
        pure, bit-identical to an all-serial run.

        ``cancel`` is polled before each yield; a truthy return raises
        :class:`~repro.errors.JobCancelledError`, and the check may raise
        its own typed error (deadlines).  Either way queued futures are
        cancelled and in-flight slots drain naturally to other users.
        """
        serial = serial_fn if serial_fn is not None else fn
        check_cancel(cancel)
        registry = get_metrics()
        pooled_ctr = serial_ctr = None
        if registry.enabled:
            # Per-pool, per-path chunk accounting: a ``path=serial`` count
            # on a multi-process pool is the crash/fallback tail showing up
            # in the metrics instead of only in the logs.
            pooled_ctr = registry.labeled_counter(
                "pool.chunks", pool=self._label, path="pooled"
            )
            serial_ctr = registry.labeled_counter(
                "pool.chunks", pool=self._label, path="serial"
            )
        done = 0
        executor = self.executor()
        if executor is not None:
            self.used = True
            window = 2 * self._processes
            pending: deque = deque()
            index = done
            try:
                while done < len(chunks):
                    while index < len(chunks) and len(pending) < window:
                        pending.append(executor.submit(fn, chunks[index]))
                        index += 1
                    try:
                        result = pending.popleft().result()
                    except (BrokenProcessPool, pickle.PicklingError) as exc:
                        self._mark_broken(exc)
                        break
                    except (AttributeError, TypeError) as exc:
                        # pickle reports unpicklable *items* as AttributeError
                        # ("Can't pickle local object ...") or TypeError
                        # ("cannot pickle '_thread.lock' object"), not
                        # PicklingError; anything else is a genuine work
                        # error and must propagate.
                        if "pickle" not in str(exc):
                            raise
                        self._mark_broken(exc)
                        break
                    check_cancel(cancel)
                    if pooled_ctr is not None:
                        pooled_ctr.inc()
                    yield result
                    done += 1
            finally:
                for future in pending:
                    future.cancel()
        for chunk in chunks[done:]:
            check_cancel(cancel)
            result = serial(chunk)
            if serial_ctr is not None:
                serial_ctr.inc()
            yield result

    def map_chunks(
        self,
        fn: Callable[[Any], Any],
        chunks: Sequence[Any],
        serial_fn: Optional[Callable[[Any], Any]] = None,
        cancel: Optional[CancelCheck] = None,
    ) -> List[Any]:
        """Eager :meth:`run_chunks` — all results as a list."""
        return list(self.run_chunks(fn, chunks, serial_fn=serial_fn, cancel=cancel))


def parent_cpu_clock() -> float:
    """The parent-side CPU clock for per-job accounting.

    ``time.thread_time`` rather than ``time.process_time``: once one shared
    pool serves concurrent service jobs (each driven from its own thread),
    a process-wide clock would attribute job A's parent CPU to job B's
    delta.  Thread CPU time is exactly the calling job's share.  Worker
    processes are single-threaded, so their chunk deltas keep
    ``process_time`` (identical there) for pickle-friendly symmetry.
    """
    return time.thread_time()
