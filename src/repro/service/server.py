"""The asyncio HTTP/JSON prediction-and-tuning server.

``repro-dag serve`` turns the library into a long-running multi-tenant
service: estimate queries answer inline through the hot-cached,
request-coalescing :class:`~repro.service.estimates.EstimateService`,
while sweep and ensemble jobs queue through the fair
:class:`~repro.service.scheduler.JobScheduler` and share **one**
crash-tolerant :class:`~repro.service.pool.ResilientPool` (respawning —
a killed worker degrades one batch to serial and the next batch gets a
fresh pool).

The HTTP layer is deliberately minimal — stdlib ``asyncio`` streams, one
request per connection, JSON bodies — because the interesting semantics
live below it.  Endpoints:

========================  ====================================================
``GET  /healthz``          liveness + configuration
``GET  /workloads``        the named-workload catalogue
``POST /estimate``         inline estimate (cached/coalesced)
``POST /sweep``            submit a cluster-size sweep job and wait
``POST /ensemble``         submit a replication-ensemble job and wait
``GET  /jobs``             job table (``/jobs/<id>`` for one)
``POST /jobs/<id>/cancel`` cooperative cancellation
``GET  /metrics``          metrics snapshot (``?format=prom`` for Prometheus
                           text exposition)
``GET  /trace``            finished tracer spans
``GET  /trace/<id>``       one request's spans as a Chrome/Perfetto flame
``GET  /status``           sliding-window per-endpoint SLO statistics
========================  ====================================================

Error mapping: :class:`~repro.errors.ServiceError` (bad request) → 400,
unknown path → 404, :class:`~repro.errors.JobTimeoutError` → 504,
:class:`~repro.errors.JobCancelledError` → 409, anything else typed
(:class:`~repro.errors.ReproError`) → 422.

Telemetry per request (armed tracer/registry only): a ``service.request``
root span whose ``trace_id`` is minted here (or adopted from an inbound
``X-Repro-Trace-Id`` header) and echoed back as ``X-Repro-Trace-Id``; the
id rides a contextvar through the scheduler onto job threads and into
worker-shipped pool-chunk spans, so ``GET /trace/<id>`` exports the whole
request as one flame.  Counts: ``service.requests`` / ``service.errors``
plus the labeled families ``service.responses{endpoint,status}`` and the
``service.request_latency{endpoint,status}`` bucket histogram; the same
latency sample feeds the :class:`~repro.obs.slo.SloTracker` behind
``GET /status``.

See ``docs/service.md`` for the full API and the failure/degradation
matrix.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.cluster.cluster import Cluster, paper_cluster
from repro.cluster.node import PAPER_NODE
from repro.core.distributions import Variant
from repro.errors import (
    JobCancelledError,
    JobTimeoutError,
    ReproError,
    ServiceError,
)
from repro.obs.context import (
    RequestContext,
    activate,
    clear_context,
    deactivate,
    new_trace_id,
)
from repro.obs.metrics import get_metrics
from repro.obs.slo import SloTracker
from repro.obs.tracer import get_tracer
from repro.service.estimates import EstimateService
from repro.service.pool import CancelCheck, ResilientPool
from repro.service.scheduler import JobScheduler, JobSpec

logger = logging.getLogger(__name__)


def _service_worker_init(metrics_enabled: bool, trace_enabled: bool = False) -> None:
    """Pool-worker initializer: arm the worker registry/tracer before any
    instrumented object is built (counters bind at construction time).

    Starts by wiping inherited trace state: on POSIX the worker forks from
    whichever thread first feeds the pool — possibly mid-request, with a
    live request context and open spans on its stack.  Left in place, every
    span this worker ever records would be stamped with (and parented
    under) a request it never served.
    """
    clear_context()
    get_tracer().clear()
    if metrics_enabled:
        get_metrics().enable()
    if trace_enabled:
        get_tracer().enable()


#: Paths that are their own label; parameterised paths collapse to a
#: placeholder so label cardinality stays bounded no matter what ids (or
#: garbage paths) clients send.
_KNOWN_ENDPOINTS = frozenset(
    {
        "/healthz",
        "/workloads",
        "/estimate",
        "/sweep",
        "/ensemble",
        "/jobs",
        "/metrics",
        "/trace",
        "/status",
    }
)


def _endpoint_label(path: str) -> str:
    """Collapse a request path to a bounded-cardinality endpoint label."""
    if path.startswith("/jobs/"):
        return "/jobs/:id/cancel" if path.endswith("/cancel") else "/jobs/:id"
    if path.startswith("/trace/"):
        return "/trace/:id"
    return path if path in _KNOWN_ENDPOINTS else "(other)"


class DagService:
    """The application object behind the HTTP server.

    Owns the estimate service, the job scheduler and the one shared
    process pool; every handler is a plain synchronous method returning
    ``(status, payload)`` so the service is equally usable without HTTP
    (tests drive it directly).

    Args:
        cluster: default cluster (the paper's 16-worker cluster).
        scale: input-volume scale for the named-workload catalogue.
        processes: shared-pool worker processes.
        job_workers: concurrent jobs (scheduler threads).
    """

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        scale: float = 0.05,
        processes: int = 2,
        job_workers: int = 2,
        cache_capacity: int = 1024,
    ):
        self._cluster = cluster if cluster is not None else paper_cluster()
        self._scale = scale
        self.pool = ResilientPool(
            processes,
            initializer=_service_worker_init,
            initargs=(get_metrics().enabled, get_tracer().enabled),
            label="service",
            respawn=True,
        )
        self.estimates = EstimateService(self._cluster, capacity=cache_capacity)
        self.scheduler = JobScheduler(workers=job_workers)
        self.slo = SloTracker()
        self._workflows: Dict[str, Any] = {}
        self._workflows_lock = threading.Lock()
        self.started_at = time.time()

    def close(self) -> None:
        self.scheduler.close()
        self.estimates.close()
        self.pool.close()

    def __enter__(self) -> "DagService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing --------------------------------------------------------

    def _workflow(self, name: str):
        with self._workflows_lock:
            if not self._workflows:
                from repro.workloads import named_workflows

                self._workflows = named_workflows(self._scale)
            workflow = self._workflows.get(name)
        if workflow is None:
            raise ServiceError(
                f"unknown workload {name!r}; GET /workloads for choices"
            )
        return workflow

    @staticmethod
    def _require(params: Dict[str, Any], key: str) -> Any:
        value = params.get(key)
        if value is None:
            raise ServiceError(f"missing required parameter {key!r}")
        return value

    def handle(
        self, method: str, path: str, params: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """Dispatch one request; returns ``(http_status, json_payload)``.

        Convenience wrapper over :meth:`handle_http` for callers without
        HTTP framing (tests, benchmarks, embedded use) — same telemetry,
        no headers, trace id dropped.
        """
        status, payload, _ = self.handle_http(method, path, params)
        return status, payload

    def handle_http(
        self,
        method: str,
        path: str,
        params: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any], Optional[str]]:
        """Dispatch one request; returns ``(status, payload, trace_id)``.

        With the tracer armed, every request gets a trace id — adopted
        from an inbound ``x-repro-trace-id`` header (lower-cased keys) or
        minted fresh — a ``service.request`` root span, and an activated
        :class:`~repro.obs.context.RequestContext` for the duration of
        routing, so spans opened anywhere downstream (including scheduler
        job threads and ingested worker chunks) join this request's trace.
        ``trace_id`` is ``None`` when tracing is off; the HTTP layer echoes
        it as ``X-Repro-Trace-Id`` when present.
        """
        registry = get_metrics()
        tracer = get_tracer()
        t0 = time.perf_counter()
        if registry.enabled:
            registry.counter("service.requests").inc()
        trace_id: Optional[str] = None
        span = None
        token = None
        if tracer.enabled:
            inbound = (headers or {}).get("x-repro-trace-id", "")
            trace_id = inbound.strip() or new_trace_id()
            span = tracer.begin("service.request", method=method, path=path)
            # Activated *after* the root span opens (so the span itself
            # parents normally on this thread); everything downstream
            # re-parents under it via the context.
            token = activate(
                RequestContext(
                    trace_id, span.span_id if span is not None else None
                )
            )
            if span is not None:
                span.attrs["trace_id"] = trace_id
        try:
            try:
                status, payload = self._route(method, path, params)
            except JobTimeoutError as exc:
                status, payload = 504, {"error": str(exc)}
            except JobCancelledError as exc:
                status, payload = 409, {"error": str(exc)}
            except ServiceError as exc:
                status, payload = 400, {"error": str(exc)}
            except ReproError as exc:
                status, payload = 422, {"error": str(exc)}
        finally:
            if token is not None:
                deactivate(token)
        if status >= 400 and registry.enabled:
            registry.counter("service.errors").inc()
        if span is not None:
            tracer.finish(span, status=status)
        if registry.enabled:
            latency = time.perf_counter() - t0
            endpoint = _endpoint_label(path)
            status_label = str(status)
            registry.labeled_counter(
                "service.responses", endpoint=endpoint, status=status_label
            ).inc()
            registry.labeled_bucket_histogram(
                "service.request_latency",
                endpoint=endpoint,
                status=status_label,
            ).observe(latency)
            self.slo.record(endpoint, latency, error=status >= 400)
        return status, payload, trace_id

    def _route(
        self, method: str, path: str, params: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            return 200, {
                "ok": True,
                "uptime_s": time.time() - self.started_at,
                "pool": {
                    "processes": self.pool.processes,
                    "broken": self.pool.broken,
                    "serial_only": self.pool.serial_only,
                },
                "cache_entries": self.estimates.cache_size,
            }
        if path == "/workloads":
            self._workflow("wc")  # force catalogue load
            with self._workflows_lock:
                names = sorted(self._workflows)
            return 200, {"workloads": names, "scale": self._scale}
        if path == "/estimate":
            return self._handle_estimate(params)
        if path == "/sweep":
            return self._handle_sweep(params)
        if path == "/ensemble":
            return self._handle_ensemble(params)
        if path == "/jobs":
            return 200, {
                "jobs": [job.describe() for job in self.scheduler.jobs()]
            }
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/cancel") and method == "POST":
                job = self.scheduler.cancel(rest[: -len("/cancel")])
                return 200, job.describe()
            return 200, self.scheduler.get(rest).describe()
        if path == "/metrics":
            fmt = str(params.get("format", "json")).lower()
            if fmt in ("prom", "prometheus"):
                from repro.obs.exposition import to_prometheus

                return 200, {
                    "_text": to_prometheus(get_metrics().snapshot()),
                    "_content_type": "text/plain; version=0.0.4; charset=utf-8",
                }
            if fmt != "json":
                raise ServiceError(
                    f"unknown metrics format {fmt!r} (choose json or prom)"
                )
            return 200, {"metrics": get_metrics().snapshot()}
        if path == "/trace":
            return 200, {"spans": _span_rows(get_tracer())}
        if path.startswith("/trace/"):
            wanted = path[len("/trace/"):]
            # Lazy import: repro.obs.export pulls in the simulator stack.
            from repro.obs.export import trace_flame

            flame = trace_flame(wanted) if wanted else None
            if flame is None:
                return 404, {
                    "error": (
                        f"no spans recorded for trace {wanted!r} (tracing "
                        "disabled, id never seen, or spans evicted)"
                    )
                }
            return 200, flame
        if path == "/status":
            return 200, {
                "uptime_s": time.time() - self.started_at,
                "slo": self.slo.snapshot(),
                "pool": {
                    "processes": self.pool.processes,
                    "broken": self.pool.broken,
                    "serial_only": self.pool.serial_only,
                },
            }
        return 404, {"error": f"no such endpoint: {method} {path}"}

    # -- endpoint handlers -------------------------------------------------------

    def _handle_estimate(self, params: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        workflow = self._workflow(str(self._require(params, "workload")))
        variant = Variant(str(params.get("variant", "mean")))
        cluster = self._cluster_override(params)
        payload = self.estimates.estimate(
            workflow,
            cluster=cluster,
            variant=variant,
            timeout=_opt_float(params, "timeout_s"),
        )
        return (200 if payload["ok"] else 422), payload

    def _cluster_override(self, params: Dict[str, Any]) -> Optional[Cluster]:
        workers = params.get("workers")
        if workers is None:
            return None
        workers = int(workers)
        if workers < 1:
            raise ServiceError(f"workers must be >= 1: {workers}")
        return Cluster(node=PAPER_NODE, workers=workers, name=f"{workers}w")

    def _job_spec(
        self,
        kind: str,
        label: str,
        params: Dict[str, Any],
        run: Callable[[Optional[CancelCheck]], Any],
    ) -> JobSpec:
        return JobSpec(
            kind=kind,
            run=run,
            label=label,
            priority=int(params.get("priority", 1)),
            deadline_s=_opt_float(params, "deadline_s"),
            retries=int(params.get("retries", 0)),
            backoff_s=float(params.get("backoff_s", 0.05)),
        )

    def _finish_job(
        self, job, params: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        if params.get("wait", True) in (False, "0", "false", "no"):
            return 202, job.describe()
        result = job.outcome(_opt_float(params, "timeout_s"))
        return 200, dict(result, job=job.describe())

    def _handle_sweep(self, params: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        from repro.sweep.runner import Candidate, SweepRunner

        workload = str(self._require(params, "workload"))
        workflow = self._workflow(workload)
        sizes = _worker_sizes(self._require(params, "workers"))
        clusters = [
            Cluster(node=PAPER_NODE, workers=w, name=f"{w}w") for w in sizes
        ]

        def run(cancel: Optional[CancelCheck]) -> Dict[str, Any]:
            runner = SweepRunner(clusters[0], pool=self.pool)
            results = runner.evaluate(
                [
                    Candidate(workflow, cluster=c, label=f"{w} workers")
                    for w, c in zip(sizes, clusters)
                ],
                cancel=cancel,
            )
            return {
                "workload": workload,
                "results": [
                    {
                        "workers": w,
                        "ok": r.ok,
                        "total_time_s": r.total_time_s,
                        "states": r.states,
                        "error": r.error,
                    }
                    for w, r in zip(sizes, results)
                ],
                "report": runner.report.describe(),
                "pool_used": runner.report.pool_used,
            }

        job = self.scheduler.submit(
            self._job_spec("sweep", f"{workload} x{len(sizes)}", params, run)
        )
        return self._finish_job(job, params)

    def _handle_ensemble(self, params: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        from repro.ensemble.engine import EnsembleConfig, EnsembleRunner
        from repro.simulator.engine import SimulationConfig

        workload = str(self._require(params, "workload"))
        workflow = self._workflow(workload)
        cluster = self._cluster_override(params) or self._cluster
        replications = int(params.get("replications", 16))
        ensemble = EnsembleConfig(
            replications=replications,
            min_replications=min(8, replications),
            base_seed=int(params.get("seed", 42)),
            exemplars=max(1, int(params.get("exemplars", 1))),
            processes=self.pool.processes,
        )
        config = SimulationConfig()

        def run(cancel: Optional[CancelCheck]) -> Dict[str, Any]:
            runner = EnsembleRunner(
                cluster, config=config, ensemble=ensemble, pool=self.pool
            )
            result = runner.run(workflow, cancel=cancel)
            payload: Dict[str, Any] = {
                "workload": workload,
                "replications": result.replications,
                "base_seed": result.base_seed,
                "makespan": result.makespan,
                "quantiles": {str(q): v for q, v in result.quantiles.items()},
                "ci": list(result.ci),
                "pool_used": result.pool_used,
            }
            if result.exemplars:
                # Per-state bottleneck attribution of the first exemplar
                # replication — the "why is it slow" answer riding along
                # with the "how slow" distribution.
                from repro.obs.attribution import attribute_bottlenecks

                report = attribute_bottlenecks(
                    workflow, cluster, result.exemplars[0]
                )
                payload["bottlenecks"] = report.to_rows()
            return payload

        job = self.scheduler.submit(
            self._job_spec("ensemble", workload, params, run)
        )
        return self._finish_job(job, params)


def _opt_float(params: Dict[str, Any], key: str) -> Optional[float]:
    value = params.get(key)
    return None if value is None else float(value)


def _worker_sizes(raw: Any) -> list:
    if isinstance(raw, str):
        raw = [part for part in raw.split(",") if part.strip()]
    try:
        sizes = [int(w) for w in raw]
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"workers must be integers: {exc}")
    if not sizes or any(w < 1 for w in sizes):
        raise ServiceError(f"workers must be a non-empty list of sizes >= 1: {sizes}")
    return sizes


def _span_rows(tracer) -> list:
    return [
        {
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "t_start": span.t_start - tracer.epoch,
            "t_end": (
                span.t_end - tracer.epoch if span.t_end is not None else None
            ),
            "attrs": {
                k: v for k, v in span.attrs.items() if not k.startswith("__")
            },
        }
        for span in tracer.snapshot()
    ]


# -- the HTTP layer ---------------------------------------------------------------

_MAX_BODY = 1 << 20  # 1 MiB of JSON is already an abusive request


async def _handle_connection(
    service: DagService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        request_line = await reader.readline()
        if not request_line:
            return
        try:
            method, target, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            await _respond(writer, 400, {"error": "malformed request line"})
            return
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            content_length = 0
        if content_length > _MAX_BODY:
            await _respond(writer, 413, {"error": "request body too large"})
            return
        body = await reader.readexactly(content_length) if content_length else b""
        split = urlsplit(target)
        params: Dict[str, Any] = dict(parse_qsl(split.query))
        if body:
            try:
                parsed = json.loads(body)
            except json.JSONDecodeError as exc:
                await _respond(writer, 400, {"error": f"invalid JSON body: {exc}"})
                return
            if not isinstance(parsed, dict):
                await _respond(
                    writer, 400, {"error": "JSON body must be an object"}
                )
                return
            params.update(parsed)
        # Handlers block (futures, job waits, estimator work), so they run
        # on the default thread-pool executor — the event loop only parses
        # and frames, which is what keeps slow jobs from starving /healthz.
        loop = asyncio.get_running_loop()
        status, payload, trace_id = await loop.run_in_executor(
            None, service.handle_http, method.upper(), split.path, params, headers
        )
        await _respond(
            writer,
            status,
            payload,
            {"X-Repro-Trace-Id": trace_id} if trace_id else None,
        )
    except (asyncio.IncompleteReadError, ConnectionResetError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    504: "Gateway Timeout",
}


async def _respond(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Dict[str, Any],
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    # A payload carrying ``_text`` ships as a plain-text body (Prometheus
    # exposition); everything else is JSON.
    if isinstance(payload, dict) and "_text" in payload:
        body = str(payload["_text"]).encode()
        content_type = str(
            payload.get("_content_type", "text/plain; charset=utf-8")
        )
    else:
        body = json.dumps(payload).encode()
        content_type = "application/json"
    head = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    head.append("Connection: close")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


async def _serve_async(
    service: DagService,
    host: str,
    port: int,
    ready: Optional[Callable[[str], None]] = None,
    shutdown: Optional[threading.Event] = None,
) -> None:
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )
    bound = server.sockets[0].getsockname()
    url = f"http://{bound[0]}:{bound[1]}"
    logger.info("repro-dag service listening on %s", url)
    if ready is not None:
        ready(url)
    async with server:
        if shutdown is None:
            await server.serve_forever()
        else:
            while not shutdown.is_set():
                await asyncio.sleep(0.05)


def serve(
    host: str = "127.0.0.1",
    port: int = 8349,
    service: Optional[DagService] = None,
    **service_kwargs: Any,
) -> None:
    """Run the server until interrupted (the ``repro-dag serve`` command).

    Arms tracing and metrics before building the service so request spans
    and service counters are live from the first request.
    """
    get_tracer().enable()
    get_metrics().enable()
    own = service is None
    if own:
        service = DagService(**service_kwargs)
    try:
        asyncio.run(_serve_async(service, host, port))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        if own:
            service.close()


class ServiceHandle:
    """A server running on a background thread (tests, CI smoke, notebooks)."""

    def __init__(self, url: str, service: DagService, stop: Callable[[], None]):
        self.url = url
        self.service = service
        self._stop = stop

    def stop(self) -> None:
        self._stop()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[DagService] = None,
    **service_kwargs: Any,
) -> ServiceHandle:
    """Start the server on a daemon thread; returns once it accepts requests.

    ``port=0`` binds an ephemeral port; the handle's ``url`` reports it.

    When the service is built here, tracing and metrics are armed first
    (as in :func:`serve`) so spans/counters are live from the first
    request; a caller-supplied ``service`` keeps whatever observability
    state the caller configured.
    """
    own = service is None
    if own:
        get_tracer().enable()
        get_metrics().enable()
        service = DagService(**service_kwargs)
    ready = threading.Event()
    shutdown = threading.Event()
    urls = []

    def _ready(url: str) -> None:
        urls.append(url)
        ready.set()

    def _run() -> None:
        asyncio.run(_serve_async(service, host, port, _ready, shutdown))

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    if not ready.wait(10.0):
        shutdown.set()
        raise ServiceError("service failed to start within 10s")

    def _stop() -> None:
        shutdown.set()
        thread.join(10.0)
        if own:
            service.close()

    return ServiceHandle(urls[0], service, _stop)
