"""Estimator-as-a-service: the long-running prediction/tuning layer.

The library's estimator answers one query in milliseconds; this package
turns that into a *workload*: an asyncio HTTP/JSON server
(:mod:`repro.service.server`) multiplexing many concurrent users over

* a per-workflow-hash hot cache and a single-flight request coalescer for
  estimate queries (:mod:`repro.service.estimates`);
* a fair job scheduler with priorities, cooperative deadlines, bounded
  retries and cancellation for sweep/ensemble jobs
  (:mod:`repro.service.scheduler`);
* **one** shared crash-tolerant process pool
  (:mod:`repro.service.pool` — also the pool engine behind
  :class:`~repro.sweep.SweepRunner` and
  :class:`~repro.ensemble.EnsembleRunner`).

See ``docs/service.md`` for the API, the scheduling semantics and the
failure/degradation matrix.

Exports resolve lazily (PEP 562): the sweep/ensemble runners import
``repro.service.pool`` for their pool engine, while the service's own
modules import the runners — eager package-level imports would close that
cycle.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "ResilientPool": "repro.service.pool",
    "parent_cpu_clock": "repro.service.pool",
    "EstimateKey": "repro.service.estimates",
    "EstimateService": "repro.service.estimates",
    "Job": "repro.service.scheduler",
    "JobScheduler": "repro.service.scheduler",
    "JobSpec": "repro.service.scheduler",
    "deadline_checker": "repro.service.scheduler",
    "DagService": "repro.service.server",
    "serve": "repro.service.server",
    "serve_in_thread": "repro.service.server",
    "ServiceClient": "repro.service.client",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.service.client import ServiceClient
    from repro.service.estimates import EstimateKey, EstimateService
    from repro.service.pool import ResilientPool, parent_cpu_clock
    from repro.service.scheduler import (
        Job,
        JobScheduler,
        JobSpec,
        deadline_checker,
    )
    from repro.service.server import DagService, serve, serve_in_thread


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
