"""Zero-copy shipping of read-only worker state over shared memory.

The shared service pool multiplexes many jobs over one
``ProcessPoolExecutor``; a job whose workers were not initialised with its
context must ship that context *inside every chunk payload*
(:func:`repro.sweep.runner._context_chunk`,
:func:`repro.ensemble.engine._setup_chunk`).  For large workflows that is
the pool hot path: the same multi-hundred-kilobyte immutable blob is
pickled by the parent and unpickled by a worker once per chunk.

This module replaces the per-chunk blob with a one-time
:mod:`multiprocessing.shared_memory` segment:

* **Parent** — :func:`pack` pickles the object once into a fresh shared
  segment and returns a tiny :class:`ShmHandle` (name + length) that rides
  in the chunk payload instead of the object.  The parent owns the
  segment's lifetime and must :func:`release` it when the job ends.
* **Worker** — :func:`resolve_shared` attaches by name, unpickles once,
  and memoises the object in a small FIFO cache keyed by segment name, so
  every later chunk of the same job pays a dict lookup instead of a
  deserialisation.  Attached segments are unregistered from the worker's
  ``resource_tracker`` (the parent unlinks; workers must not).

The transport is *bit-transparent*: the worker reconstructs the object
from the identical pickle bytes the raw path would have shipped, so
results are bit-identical under the sweep/ensemble determinism contracts
(``tests/service/test_shm.py``).  Every failure mode — platform without
shared memory, segment creation denied, attach failure in the worker —
degrades to shipping the raw object exactly as before, never to an error.

Environment gates:

* ``REPRO_SHM=0`` disables the transport (raw pickling everywhere).
* ``REPRO_SHM_MIN_BYTES`` (default ``65536``) — payloads whose pickle is
  smaller ship raw; a shared segment only pays for itself when the blob
  is large.  Set to ``0`` to force shm for parity tests.

Telemetry: ``pool.shm_ships`` counts packed segments and
``pool.shm_bytes`` their total pickled size (both parent-side, riding the
usual metrics registry).
"""

from __future__ import annotations

import logging
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.metrics import get_metrics

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

logger = logging.getLogger(__name__)

#: Pickle payloads below this many bytes ship raw by default; a shared
#: segment's create/attach round-trip only wins on large blobs.
DEFAULT_MIN_BYTES = 65536

#: Deserialised objects a worker keeps, keyed by segment name.  The shared
#: service pool runs a handful of jobs concurrently; 8 covers them while
#: bounding worker memory when jobs churn.
WORKER_CACHE_ENTRIES = 8


@dataclass(frozen=True)
class ShmHandle:
    """A picklable reference to an object parked in shared memory."""

    name: str
    size: int


def shm_enabled() -> bool:
    """Shared-memory shipping is available and not disabled by env."""
    if shared_memory is None:
        return False
    return os.environ.get("REPRO_SHM", "1").lower() not in ("0", "false", "off")


def min_ship_bytes() -> int:
    """The raw-vs-shm size threshold (``REPRO_SHM_MIN_BYTES`` override)."""
    raw = os.environ.get("REPRO_SHM_MIN_BYTES")
    if raw is None:
        return DEFAULT_MIN_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MIN_BYTES


def pack(obj: Any, label: str = "pool") -> Optional[ShmHandle]:
    """Park ``obj``'s pickle in a fresh shared segment; ``None`` ships raw.

    ``None`` means the caller should fall back to shipping the raw object
    (transport disabled, blob below the size threshold, unpicklable
    object, or segment creation failed) — the degradation is silent for
    the size gate and logged once at WARNING for genuine failures.

    The caller owns the returned segment and must :func:`release` it when
    the job's last chunk has been served.
    """
    if not shm_enabled():
        return None
    try:
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        # The raw path would fail identically; let the pool's existing
        # pickle probe / mid-map handling own the loud degradation.
        return None
    if len(blob) < min_ship_bytes():
        return None
    try:
        segment = shared_memory.SharedMemory(create=True, size=len(blob))
        segment.buf[: len(blob)] = blob
    except Exception as exc:
        logger.warning(
            "%s: shared-memory segment creation failed (%s: %s); "
            "shipping worker state per chunk instead",
            label,
            type(exc).__name__,
            exc,
        )
        return None
    handle = ShmHandle(name=segment.name, size=len(blob))
    segment.close()
    registry = get_metrics()
    if registry.enabled:
        registry.counter("pool.shm_ships").inc()
        registry.counter("pool.shm_bytes").inc(len(blob))
    logger.debug(
        "%s: parked %d-byte worker state in shared memory %s",
        label,
        len(blob),
        handle.name,
    )
    return handle


def release(handle: Optional[ShmHandle]) -> None:
    """Unlink a segment created by :func:`pack` (parent-side, idempotent)."""
    if handle is None or shared_memory is None:
        return
    try:
        segment = shared_memory.SharedMemory(name=handle.name)
        segment.close()
        segment.unlink()
    except FileNotFoundError:
        pass
    except Exception as exc:  # pragma: no cover - platform-specific
        logger.debug(
            "shared-memory release of %s failed: %s", handle.name, exc
        )


#: Worker-side FIFO of deserialised objects, keyed by segment name.
_worker_cache: "OrderedDict[str, Any]" = OrderedDict()


def resolve_shared(payload: Any) -> Any:
    """Worker-side inverse of :func:`pack`; passes non-handles through.

    The first chunk of a job attaches the segment, unpickles, caches and
    detaches; later chunks hit the cache.  Attached segments are
    unregistered from this process's ``resource_tracker`` so worker exit
    does not unlink (or warn about) a segment the parent still owns.
    """
    if not isinstance(payload, ShmHandle):
        return payload
    cached = _worker_cache.get(payload.name)
    if cached is not None:
        return cached
    segment = shared_memory.SharedMemory(name=payload.name)
    try:
        if resource_tracker is not None:
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        obj = pickle.loads(bytes(segment.buf[: payload.size]))
    finally:
        segment.close()
    while len(_worker_cache) >= WORKER_CACHE_ENTRIES:
        _worker_cache.popitem(last=False)
    _worker_cache[payload.name] = obj
    return obj
