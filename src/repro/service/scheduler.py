"""Fair job scheduling for sweep/ensemble work over one shared pool.

Estimates answer inline (milliseconds); sweeps and ensembles are *jobs* —
seconds of pool time that must not monopolise the service.  This module
multiplexes them:

* **Fairness** — jobs queue per ``(priority, kind)``; workers always serve
  the most urgent priority, and round-robin across *kinds* within it, so
  a flood of sweep submissions cannot starve ensemble jobs of equal
  priority (and vice versa).
* **Cooperative deadlines and cancellation** — every job runs with a
  :data:`~repro.service.pool.CancelCheck` that the runners poll between
  chunks.  A deadline (measured from submission, so queue time counts)
  raises :class:`~repro.errors.JobTimeoutError`; an explicit
  :meth:`Job.cancel` raises :class:`~repro.errors.JobCancelledError`.
  Either way the job stops feeding the shared pool at the next chunk
  boundary and its queued pool futures are released to other jobs.
* **Bounded retries** — transient failures re-run with exponential
  backoff up to ``retries`` times; cancellation and deadline expiry are
  never retried (they are answers, not failures).

Counters (armed registry only): ``jobs.submitted``, ``jobs.succeeded``,
``jobs.failed``, ``jobs.retries``, ``jobs.cancelled``, ``jobs.timeouts``.

Spans (armed tracer only): each job emits ``job.queue_wait`` (backdated to
submission, so scheduler queueing is visible in the request flame) and
``job.run`` around the attempt loop.  Both re-activate the *submitting*
request's trace context on the worker thread, so they — and everything the
work function nests under them, including worker-shipped pool chunk spans —
carry the originating request's ``trace_id``.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import JobCancelledError, JobTimeoutError, ServiceError
from repro.obs.context import activate, current_context, deactivate
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.service.pool import CancelCheck, check_cancel

logger = logging.getLogger(__name__)


def deadline_checker(
    deadline_s: float, clock: Callable[[], float] = time.monotonic
) -> CancelCheck:
    """A :data:`CancelCheck` that raises once ``deadline_s`` has elapsed.

    The clock starts when the checker is *built* (at submission for
    service jobs, so time spent queued counts against the deadline —
    a late answer is late no matter where the time went).
    """
    start = clock()

    def check() -> bool:
        if clock() - start > deadline_s:
            raise JobTimeoutError(
                f"job exceeded its deadline of {deadline_s:.3f}s"
            )
        return False

    return check


@dataclass
class JobSpec:
    """What to run and how to treat it.

    Attributes:
        kind: scheduling class ("sweep", "ensemble", ...) — fairness
            round-robins across kinds within a priority.
        run: the work, called as ``run(cancel)``; it must poll ``cancel``
            between chunks (the runners do) for deadlines/cancellation to
            take effect.
        priority: lower is more urgent; ties are served fairly by kind.
        deadline_s: cooperative deadline measured from submission.
        retries: additional attempts after a failure (not after
            cancellation or deadline expiry).
        backoff_s: base sleep before retry *i* (``backoff_s * 2**i``).
        label: free-form description, surfaced by ``/jobs``.
    """

    kind: str
    run: Callable[[Optional[CancelCheck]], Any]
    priority: int = 1
    deadline_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.05
    label: str = ""


class Job:
    """A submitted job: status, outcome, and the cancellation handle."""

    #: Terminal states a job can reach.
    TERMINAL = ("succeeded", "failed", "cancelled", "timeout")

    def __init__(self, job_id: str, spec: JobSpec):
        self.id = job_id
        self.spec = spec
        self.status = "queued"
        self.result: Any = None
        self.error: Optional[str] = None
        self.attempts = 0
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None
        self._done = threading.Event()
        self._cancel = threading.Event()
        # Snapshot the submitting request's trace context: the job runs on
        # a worker thread later, and its spans must re-parent under the
        # HTTP request that queued it, not under whatever that thread was
        # doing.  perf_counter at submission backdates the queue-wait span.
        self.trace_context = current_context()
        self._submitted_perf = time.perf_counter()
        # Built at construction (== submission), so queue time counts
        # against the deadline: a late answer is late no matter where
        # the time went.
        self._deadline: Optional[CancelCheck] = (
            deadline_checker(spec.deadline_s)
            if spec.deadline_s is not None
            else None
        )

    def cancel(self) -> None:
        """Request cooperative cancellation (effective at the next chunk)."""
        self._cancel.set()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def outcome(self, timeout: Optional[float] = None) -> Any:
        """The job's result; raises its typed error on any failure."""
        if not self.wait(timeout):
            raise ServiceError(f"job {self.id} still running")
        if self.status == "succeeded":
            return self.result
        if self.status == "timeout":
            raise JobTimeoutError(self.error or f"job {self.id} timed out")
        if self.status == "cancelled":
            raise JobCancelledError(self.error or f"job {self.id} cancelled")
        raise ServiceError(self.error or f"job {self.id} failed")

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly status record for the ``/jobs`` endpoint."""
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "label": self.spec.label,
            "priority": self.spec.priority,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "trace_id": (
                self.trace_context.trace_id
                if self.trace_context is not None
                else None
            ),
        }


class JobScheduler:
    """Run jobs on worker threads with priority + kind-fair scheduling.

    Args:
        workers: concurrent jobs (each drives pool chunks from its own
            thread — see :func:`~repro.service.pool.parent_cpu_clock` for
            why per-thread CPU accounting matters here).
        history: completed jobs to retain for ``/jobs`` queries.
    """

    def __init__(self, workers: int = 2, history: int = 256):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1: {workers}")
        self._queues: Dict[Tuple[int, str], deque] = {}
        self._rr: Dict[int, itertools.count] = {}
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._history = history
        self._cond = threading.Condition()
        self._closed = False
        self._seq = itertools.count(1)
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"job-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission and queries --------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Queue a job; returns immediately with its :class:`Job` handle."""
        registry = get_metrics()
        if registry.enabled:
            registry.counter("jobs.submitted").inc()
        with self._cond:
            if self._closed:
                raise ServiceError("job scheduler is closed")
            job = Job(f"{spec.kind}-{next(self._seq)}", spec)
            self._jobs[job.id] = job
            while len(self._jobs) > self._history:
                oldest = next(iter(self._jobs.values()))
                if oldest.status in Job.TERMINAL:
                    self._jobs.popitem(last=False)
                else:
                    break
            self._queues.setdefault((spec.priority, spec.kind), deque()).append(job)
            self._cond.notify()
        return job

    def get(self, job_id: str) -> Job:
        with self._cond:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; queued jobs settle at pickup, running jobs
        at their next chunk boundary."""
        job = self.get(job_id)
        job.cancel()
        with self._cond:
            self._cond.notify_all()
        return job

    def jobs(self) -> List[Job]:
        with self._cond:
            return list(self._jobs.values())

    # -- scheduling --------------------------------------------------------------

    def _next_job(self) -> Optional[Job]:
        """Pop the next job under the fairness policy (caller holds the lock).

        Most urgent priority first; within it, round-robin over the kinds
        that currently have queued work.
        """
        ready = [key for key, queue in self._queues.items() if queue]
        if not ready:
            return None
        priority = min(key[0] for key in ready)
        kinds = sorted({key[1] for key in ready if key[0] == priority})
        turn = next(self._rr.setdefault(priority, itertools.count()))
        kind = kinds[turn % len(kinds)]
        return self._queues[(priority, kind)].popleft()

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                job = self._next_job()
                while job is None and not self._closed:
                    self._cond.wait()
                    job = self._next_job()
                if job is None and self._closed:
                    return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        registry = get_metrics()
        spec = job.spec
        deadline = job._deadline  # clock started at submission

        def check() -> bool:
            if job.cancel_requested:
                return True
            if deadline is not None:
                deadline()  # raises JobTimeoutError past the deadline
            return False

        # Re-activate the submitting request's context on this worker
        # thread for the duration of the job: thread-root spans opened
        # below (and everything the work function nests under them) parent
        # to the request span and carry its trace_id.
        token = (
            activate(job.trace_context)
            if job.trace_context is not None
            else None
        )
        tracer = get_tracer()
        run_span = None
        if tracer.enabled:
            # Queue wait as a zero-CPU span backdated to submission: the
            # gap between the request handler and the job's first chunk is
            # scheduler queueing, and it should be visible in the flame.
            queue_span = tracer.begin(
                "job.queue_wait", job=job.id, kind=spec.kind
            )
            if queue_span is not None:
                # Backdate wall time only; begin/finish back-to-back keeps
                # the CPU delta ~0, which is the truth for queue waiting.
                queue_span.t_start = job._submitted_perf
            tracer.finish(queue_span)
            run_span = tracer.begin(
                "job.run",
                job=job.id,
                kind=spec.kind,
                label=spec.label,
                priority=spec.priority,
            )
        try:
            self._run_job_attempts(job, spec, registry, check)
        finally:
            if run_span is not None:
                tracer.finish(
                    run_span, status=job.status, attempts=job.attempts
                )
            if token is not None:
                deactivate(token)
        job.finished_at = time.time()
        job._done.set()

    def _run_job_attempts(
        self,
        job: Job,
        spec: JobSpec,
        registry,
        check: CancelCheck,
    ) -> None:
        job.status = "running"
        attempt = 0
        while True:
            job.attempts = attempt + 1
            try:
                # Settle pre-pickup cancellations/expiries cheaply: raise
                # the typed error before the work function ever runs.
                check_cancel(check)
                job.result = spec.run(check)
                job.status = "succeeded"
                if registry.enabled:
                    registry.counter("jobs.succeeded").inc()
                break
            except JobCancelledError as exc:
                job.status = "cancelled"
                job.error = str(exc)
                if registry.enabled:
                    registry.counter("jobs.cancelled").inc()
                break
            except JobTimeoutError as exc:
                job.status = "timeout"
                job.error = str(exc)
                if registry.enabled:
                    registry.counter("jobs.timeouts").inc()
                break
            except Exception as exc:
                if attempt < spec.retries:
                    if registry.enabled:
                        registry.counter("jobs.retries").inc()
                    delay = spec.backoff_s * (2 ** attempt)
                    logger.warning(
                        "job %s attempt %d failed (%s: %s); retrying in %.2fs",
                        job.id, job.attempts, type(exc).__name__, exc, delay,
                    )
                    time.sleep(delay)
                    attempt += 1
                    continue
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                if registry.enabled:
                    registry.counter("jobs.failed").inc()
                logger.warning("job %s failed permanently: %s", job.id, job.error)
                break
