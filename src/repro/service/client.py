"""Thin stdlib HTTP client for the prediction service.

``http.client`` only — the client mirrors the server's no-new-deps rule
so scripts, tests and the ``repro-dag call`` command can talk to a
running service from anywhere the package is installed.  Server-side
typed errors come back as the matching exceptions:
504 → :class:`~repro.errors.JobTimeoutError`, 409 →
:class:`~repro.errors.JobCancelledError`, any other error status →
:class:`~repro.errors.ServiceError` — all of them
:class:`~repro.errors.ReproError`\\ s, so the CLI's exit-code-2 mapping
applies unchanged.

Tracing: every request forwards the active
:class:`~repro.obs.context.RequestContext`'s trace id as
``X-Repro-Trace-Id`` (so a traced caller's id spans the wire), and the
server's echoed id is kept on :attr:`ServiceClient.last_trace_id` — feed
it to :meth:`ServiceClient.flame` (``GET /trace/<id>``) to pull the flame
of the request you just made.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional
from urllib.parse import urlsplit

from repro.errors import JobCancelledError, JobTimeoutError, ServiceError
from repro.obs.context import current_trace_id


class ServiceClient:
    """Synchronous JSON client bound to one service base URL."""

    def __init__(self, url: str, timeout: float = 120.0):
        split = urlsplit(url)
        if split.scheme != "http" or not split.hostname:
            raise ServiceError(f"unsupported service URL: {url!r}")
        self._host = split.hostname
        self._port = split.port or 80
        self._timeout = timeout
        #: Trace id echoed by the server on the most recent request
        #: (``None`` until a traced response arrives).
        self.last_trace_id: Optional[str] = None

    def request(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One JSON round-trip; raises the typed error on failure statuses.

        Non-JSON success bodies (``/metrics?format=prom``) come back as
        ``{"text": ..., "content_type": ...}``.
        """
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            body = json.dumps(params or {}).encode()
            headers = {"Content-Type": "application/json"}
            caller_trace = current_trace_id()
            if caller_trace is not None:
                headers["X-Repro-Trace-Id"] = caller_trace
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            echoed = response.getheader("X-Repro-Trace-Id")
            if echoed:
                self.last_trace_id = echoed
            content_type = response.getheader("Content-Type", "") or ""
            if response.status < 400 and "json" not in content_type:
                return {
                    "text": raw.decode("utf-8", "replace"),
                    "content_type": content_type,
                }
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                raise ServiceError(
                    f"service returned non-JSON ({response.status}): {raw[:200]!r}"
                )
            if response.status >= 400:
                message = payload.get("error", f"HTTP {response.status}")
                if response.status == 504:
                    raise JobTimeoutError(message)
                if response.status == 409:
                    raise JobCancelledError(message)
                raise ServiceError(message)
            return payload
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise ServiceError(
                f"cannot reach service at {self._host}:{self._port}: {exc}"
            )
        finally:
            connection.close()

    # -- convenience wrappers ----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def workloads(self) -> List[str]:
        return self.request("GET", "/workloads")["workloads"]

    def estimate(self, workload: str, **params: Any) -> Dict[str, Any]:
        return self.request("POST", "/estimate", dict(params, workload=workload))

    def sweep(
        self, workload: str, workers: List[int], **params: Any
    ) -> Dict[str, Any]:
        return self.request(
            "POST", "/sweep", dict(params, workload=workload, workers=workers)
        )

    def ensemble(self, workload: str, **params: Any) -> Dict[str, Any]:
        return self.request("POST", "/ensemble", dict(params, workload=workload))

    def jobs(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("POST", f"/jobs/{job_id}/cancel")

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/metrics")["metrics"]

    def prom_metrics(self) -> str:
        """The Prometheus text exposition of the service's metrics."""
        return self.request("GET", "/metrics?format=prom")["text"]

    def trace(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/trace")["spans"]

    def flame(self, trace_id: str) -> Dict[str, Any]:
        """One request's Chrome/Perfetto flame (``GET /trace/<id>``)."""
        return self.request("GET", f"/trace/{trace_id}")

    def status(self) -> Dict[str, Any]:
        """Sliding-window SLO statistics (``GET /status``)."""
        return self.request("GET", "/status")
