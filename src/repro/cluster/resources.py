"""Resource kinds and capacity vectors.

Two distinct notions of "resource" appear in the paper and therefore in this
package, and it is important not to conflate them:

* **Preemptable throughput resources** (:class:`Resource`): CPU processing
  bandwidth, disk bandwidth and network bandwidth.  These are the quantities
  the BOE model reasons about — a running task draws on them continuously and
  the operating system time-shares them among tasks, so their per-task share
  ``mu(delta)`` varies with the degree of parallelism.  Memory is explicitly
  *not* preemptable (it is pinned by the JVM heap), so it never appears as a
  throughput pool; it constrains *admission* instead.

* **Schedulable capacity** (:class:`ResourceVector`): the (vcores, memory)
  pair that YARN's resource manager hands out as containers.  The scheduler
  (DRF) decides the degree of parallelism from these; the throughput pools
  then decide how fast the admitted tasks run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SpecificationError


class Resource(enum.Enum):
    """Preemptable throughput resources recognised by the cost models.

    ``CPU`` is preemptable only once the number of runnable compute threads
    exceeds the core count (paper §III-A2); ``DISK`` and ``NETWORK`` are
    always preemptable.  ``MEMORY`` is listed for completeness but is never a
    throughput pool — it gates container admission only.
    """

    CPU = "cpu"
    DISK = "disk"
    NETWORK = "network"
    MEMORY = "memory"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The resources whose bandwidth is shared max-min among running tasks.
PREEMPTABLE_RESOURCES = (Resource.CPU, Resource.DISK, Resource.NETWORK)


@dataclass(frozen=True)
class ResourceVector:
    """A schedulable (vcores, memory) capacity, as used by YARN/DRF.

    Attributes:
        vcores: virtual CPU cores.  Fractional values are permitted for
            shares and accumulators, though container requests are normally
            integral.
        memory_mb: memory in MB.
    """

    vcores: float
    memory_mb: float

    def __post_init__(self) -> None:
        if self.vcores < 0 or self.memory_mb < 0:
            raise SpecificationError(
                f"resource vector components must be non-negative: {self}"
            )

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.vcores + other.vcores, self.memory_mb + other.memory_mb)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        # Long add/release chains accumulate float error; genuine negative
        # balances are still rejected by __post_init__, but drift within
        # tolerance snaps back to zero.
        def clamp(value: float) -> float:
            return 0.0 if -1e-6 < value < 0.0 else value

        return ResourceVector(
            clamp(self.vcores - other.vcores),
            clamp(self.memory_mb - other.memory_mb),
        )

    def __mul__(self, k: float) -> "ResourceVector":
        return ResourceVector(self.vcores * k, self.memory_mb * k)

    __rmul__ = __mul__

    def fits_into(self, capacity: "ResourceVector") -> bool:
        """True when this request can be satisfied from ``capacity``."""
        return self.vcores <= capacity.vcores and self.memory_mb <= capacity.memory_mb

    def dominant_share(self, capacity: "ResourceVector") -> float:
        """The DRF dominant share of this usage relative to ``capacity``.

        The dominant share is the maximum, over resource dimensions, of the
        fraction of the cluster capacity this vector consumes (Ghodsi et al.,
        NSDI'11).
        """
        if capacity.vcores <= 0 or capacity.memory_mb <= 0:
            raise SpecificationError(f"capacity must be strictly positive: {capacity}")
        return max(self.vcores / capacity.vcores, self.memory_mb / capacity.memory_mb)

    def max_containers(self, request: "ResourceVector") -> int:
        """How many containers of size ``request`` fit into this capacity."""
        if request.vcores <= 0 and request.memory_mb <= 0:
            raise SpecificationError("container request must be non-zero")
        limits = []
        if request.vcores > 0:
            limits.append(self.vcores / request.vcores)
        if request.memory_mb > 0:
            limits.append(self.memory_mb / request.memory_mb)
        return int(min(limits) + 1e-9)


ZERO_VECTOR = ResourceVector(0.0, 0.0)
