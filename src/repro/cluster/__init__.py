"""Cluster substrate: hardware descriptions consumed by models and simulator."""

from repro.cluster.cluster import Cluster, paper_cluster, single_node_cluster
from repro.cluster.node import NodeSpec, PAPER_NODE
from repro.cluster.resources import (
    PREEMPTABLE_RESOURCES,
    Resource,
    ResourceVector,
    ZERO_VECTOR,
)

__all__ = [
    "Cluster",
    "NodeSpec",
    "PAPER_NODE",
    "PREEMPTABLE_RESOURCES",
    "Resource",
    "ResourceVector",
    "ZERO_VECTOR",
    "paper_cluster",
    "single_node_cluster",
]
