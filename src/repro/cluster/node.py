"""Physical node specification.

A :class:`NodeSpec` carries exactly the information the models and the
simulator need about one worker machine: how much schedulable capacity it
offers (cores, memory) and the throughput of its preemptable resources (CPU
processing bandwidth per core is job-specific, so only the *core count* lives
here; disk and network bandwidth are hardware properties and live here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.resources import Resource, ResourceVector
from repro.errors import SpecificationError


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of a single worker node.

    Attributes:
        cores: number of physical CPU cores available for task execution.
        memory_mb: physical memory available to YARN containers, in MB.
        disk_mb_s: aggregate sequential disk bandwidth of all drives, in
            MB/s.  Reads and writes draw from the same pool (a 7.2k RPM
            spindle does not overlap them).
        network_mb_s: usable NIC payload bandwidth, in MB/s.
        disks: number of drives; informational (spill placement, Table I
            descriptions) — bandwidth is already aggregated in ``disk_mb_s``.
    """

    cores: int = 6
    memory_mb: float = 32_000.0
    disk_mb_s: float = 240.0
    network_mb_s: float = 112.0
    disks: int = 2

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise SpecificationError(f"node must have at least one core: {self}")
        if self.memory_mb <= 0:
            raise SpecificationError(f"node memory must be positive: {self}")
        if self.disk_mb_s <= 0 or self.network_mb_s <= 0:
            raise SpecificationError(f"node bandwidths must be positive: {self}")
        if self.disks <= 0:
            raise SpecificationError(f"node must have at least one disk: {self}")

    @property
    def capacity(self) -> ResourceVector:
        """Schedulable (vcores, memory) capacity of the node."""
        return ResourceVector(float(self.cores), self.memory_mb)

    def bandwidth(self, resource: Resource) -> float:
        """Hardware bandwidth of ``resource`` on this node, in MB/s.

        ``CPU`` has no universal MB/s figure (it depends on the code being
        run), so asking for it is an error; callers must combine the core
        count with a per-job compute rate instead.
        """
        if resource is Resource.DISK:
            return self.disk_mb_s
        if resource is Resource.NETWORK:
            return self.network_mb_s
        raise SpecificationError(
            f"{resource} has no node-level bandwidth; "
            "CPU throughput is job-specific and MEMORY is not a throughput pool"
        )


#: The node used in the paper's testbed (§V-A): 6 physical cores at 2.4 GHz,
#: two 500 GB 7.2k RPM drives (~120 MB/s sequential each), 32 GB RAM, 1 GbE.
#: The 240 MB/s aggregate disk figure is calibrated so Table I's bottleneck
#: annotations emerge (notably: the three-replica TeraSort reduce must tip to
#: the *network*, which requires the disks to outrun 2x the NIC payload rate;
#: see EXPERIMENTS.md).
PAPER_NODE = NodeSpec(
    cores=6,
    memory_mb=32_000.0,
    disk_mb_s=240.0,
    network_mb_s=112.0,
    disks=2,
)
