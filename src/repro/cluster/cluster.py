"""Cluster specification.

A :class:`Cluster` is a homogeneous set of worker nodes (the paper's testbed
is homogeneous: eleven identical servers, one of which runs the master).  The
models consume aggregate capacities; the simulator additionally places tasks
on individual nodes, so the node list is materialised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cluster.node import NodeSpec, PAPER_NODE
from repro.cluster.resources import Resource, ResourceVector
from repro.errors import SpecificationError


@dataclass(frozen=True)
class Cluster:
    """A homogeneous cluster of ``workers`` nodes of spec ``node``.

    Attributes:
        node: hardware description shared by every worker.
        workers: number of worker nodes available to run tasks (the paper
            uses 11 servers; one hosts the resource manager and HDFS
            namenode, leaving 10 workers).
        name: label used in reports.
    """

    node: NodeSpec = PAPER_NODE
    workers: int = 10
    name: str = "cluster"

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise SpecificationError(f"cluster needs at least one worker: {self}")

    # -- schedulable capacity -------------------------------------------------

    @property
    def capacity(self) -> ResourceVector:
        """Total schedulable (vcores, memory) capacity across all workers."""
        return self.node.capacity * float(self.workers)

    @property
    def total_cores(self) -> int:
        return self.node.cores * self.workers

    # -- preemptable throughput pools -----------------------------------------

    def aggregate_bandwidth(self, resource: Resource) -> float:
        """Cluster-wide bandwidth of ``resource`` in MB/s (DISK or NETWORK)."""
        return self.node.bandwidth(resource) * self.workers

    def per_node_bandwidth(self, resource: Resource) -> float:
        """Per-node bandwidth of ``resource`` in MB/s (DISK or NETWORK)."""
        return self.node.bandwidth(resource)

    # -- locality --------------------------------------------------------------

    @property
    def remote_fraction(self) -> float:
        """Fraction of uniformly-spread traffic that crosses the network.

        When data is hash-partitioned uniformly across ``n`` workers (the
        shuffle, or replica placement), ``1/n`` of it lands on the node that
        produced it and the rest crosses the switch.
        """
        return 1.0 - 1.0 / self.workers

    def describe(self) -> str:
        """One-line human-readable summary used by the CLI and reports."""
        n = self.node
        return (
            f"{self.name}: {self.workers} workers x ({n.cores} cores, "
            f"{n.memory_mb / 1000:.0f} GB RAM, {n.disks} disks @ {n.disk_mb_s:.0f} MB/s agg, "
            f"NIC {n.network_mb_s:.0f} MB/s)"
        )


def paper_cluster(workers: int = 10) -> Cluster:
    """The cluster of the paper's evaluation (§V-A).

    Eleven identical servers; we expose the ten that run NodeManagers as
    workers.  Pass a different ``workers`` count for capacity-planning
    what-if studies.
    """
    return Cluster(node=PAPER_NODE, workers=workers, name="paper-testbed")


def single_node_cluster(node: NodeSpec = PAPER_NODE) -> Cluster:
    """A one-node cluster, handy for unit tests and the Fig. 4 worked example."""
    return Cluster(node=node, workers=1, name="single-node")
