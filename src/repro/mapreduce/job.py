"""The MapReduce job model.

A :class:`MapReduceJob` captures the *job profile* the paper's models consume
(Problem 1: "job profile J"): data-flow statistics (input volume,
selectivities) and per-core compute throughputs of the user-defined map and
reduce functions.  In the authors' system these numbers come from Hadoop job
history; here they come either from workload definitions
(:mod:`repro.workloads`) or from profiling simulator runs
(:mod:`repro.profiling`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional

from repro.errors import SpecificationError
from repro.mapreduce.config import DEFAULT_CONFIG, JobConfig
from repro.mapreduce import stage as stage_math
from repro.mapreduce.stage import StageKind


@dataclass(frozen=True)
class MapReduceJob:
    """Specification + profile of one MapReduce job.

    Attributes:
        name: unique label within a workflow.
        input_mb: total job input volume (MB).
        map_selectivity: map output bytes per input byte (before
            compression); a combiner shows up here as selectivity < 1.
        reduce_selectivity: reduce output bytes per (uncompressed) reduce
            input byte.
        map_cpu_mb_s: per-core throughput of the map-side compute pipeline
            (deserialisation + user map + combiner + sort), in input MB/s.
            Compression CPU cost is accounted separately from
            ``config.compression``.
        reduce_cpu_mb_s: per-core throughput of the reduce-side compute
            pipeline, in uncompressed reduce-input MB/s.
        num_reducers: number of reduce tasks.  ``0`` declares a map-only job
            (no shuffle, map writes straight to HDFS).
        config: framework configuration.
    """

    name: str
    input_mb: float
    map_selectivity: float = 1.0
    reduce_selectivity: float = 1.0
    map_cpu_mb_s: float = 50.0
    reduce_cpu_mb_s: float = 50.0
    num_reducers: int = 60
    config: JobConfig = DEFAULT_CONFIG

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("job name must be non-empty")
        if self.input_mb <= 0:
            raise SpecificationError(f"job input must be positive: {self.name}")
        if self.map_selectivity < 0 or self.reduce_selectivity < 0:
            raise SpecificationError(f"selectivities must be non-negative: {self.name}")
        if self.map_cpu_mb_s <= 0 or self.reduce_cpu_mb_s <= 0:
            raise SpecificationError(f"compute throughputs must be positive: {self.name}")
        if self.num_reducers < 0:
            raise SpecificationError(f"num_reducers must be >= 0: {self.name}")

    # -- task counts ----------------------------------------------------------

    @property
    def num_map_tasks(self) -> int:
        return stage_math.num_map_tasks(self.input_mb, self.config.split_mb)

    @property
    def num_reduce_tasks(self) -> int:
        return self.num_reducers

    @property
    def is_map_only(self) -> bool:
        """True when the job has no reduce stage (e.g. a filter/projection)."""
        return self.num_reducers == 0

    def num_tasks(self, kind: StageKind) -> int:
        return self.num_map_tasks if kind is StageKind.MAP else self.num_reduce_tasks

    def stages(self) -> tuple:
        """The schedulable stages of this job, in execution order."""
        if self.is_map_only:
            return (StageKind.MAP,)
        return (StageKind.MAP, StageKind.REDUCE)

    # -- data flow ------------------------------------------------------------

    @property
    def map_output_mb(self) -> float:
        """Uncompressed map output of the whole job."""
        return stage_math.map_output_mb(self)

    @property
    def shuffle_mb(self) -> float:
        """Bytes crossing the shuffle (compressed representation)."""
        return 0.0 if self.is_map_only else stage_math.shuffle_mb(self)

    @property
    def output_mb(self) -> float:
        """Bytes written to HDFS by the final stage (one replica's worth)."""
        if self.is_map_only:
            return stage_math.map_output_mb(self)
        return stage_math.reduce_output_mb(self)

    def task_input_mb(self, kind: StageKind) -> float:
        """Average per-task input of the given stage."""
        n = self.num_tasks(kind)
        if n == 0:
            raise SpecificationError(f"job {self.name} has no {kind} tasks")
        return stage_math.stage_input_mb(self, kind) / n

    # -- convenience ----------------------------------------------------------

    def renamed(self, name: str) -> "MapReduceJob":
        """A copy of this job under a different name (for DAG composition)."""
        return replace(self, name=name)

    def with_config(self, **changes) -> "MapReduceJob":
        """A copy with configuration fields updated."""
        return replace(self, config=self.config.with_(**changes))

    def scaled(self, factor: float, name: Optional[str] = None) -> "MapReduceJob":
        """A copy processing ``factor`` times the input volume.

        Task counts scale through the split size; selectivities and compute
        rates are volume-independent, so they carry over unchanged.
        """
        if factor <= 0:
            raise SpecificationError(f"scale factor must be positive: {factor}")
        return replace(self, input_mb=self.input_mb * factor, name=name or self.name)

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{self.name}: in={self.input_mb:.0f}MB maps={self.num_map_tasks} "
            f"reds={self.num_reducers} sel=({self.map_selectivity:.2f},"
            f"{self.reduce_selectivity:.2f}) cpu=({self.map_cpu_mb_s:.0f},"
            f"{self.reduce_cpu_mb_s:.0f})MB/s C={'Y' if self.config.compression.enabled else 'N'} "
            f"R={self.config.replicas}"
        )

    def __getstate__(self) -> Dict[str, object]:
        # Strip the hash pin (see below): hash values are per-process
        # (string hashing is seed-randomised), so they must never travel
        # through pickle to pool workers.
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __setstate__(self, state: Dict[str, object]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)


# Jobs are hashed on every model-cache lookup (the BOE L1 key contains the
# target job plus every concurrent job), and the generated dataclass hash
# re-walks all fields including the nested config each time.  Instances are
# frozen, so the value is computed once and pinned per object.  Installed
# after class creation because ``@dataclass(frozen=True)`` overwrites a
# ``__hash__`` defined in the class body; dataclass subclasses regenerate
# their own ``__hash__`` and simply skip the pin.
_GENERATED_JOB_HASH = MapReduceJob.__hash__


def _cached_job_hash(self: MapReduceJob) -> int:
    value = self.__dict__.get("_hash_pin")
    if value is None:
        value = _GENERATED_JOB_HASH(self)
        object.__setattr__(self, "_hash_pin", value)
    return value


MapReduceJob.__hash__ = _cached_job_hash  # type: ignore[method-assign]
