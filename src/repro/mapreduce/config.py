"""Job configuration knobs.

These mirror the Hadoop/YARN configuration surface that matters to the cost
models: compression (the ``C`` column of Table I), the HDFS replication
factor (the ``R`` column), split size, container sizes, the map-side sort
buffer and reduce slow-start.

The defaults reproduce the paper's testbed configuration; individual
workloads override what Table I specifies (e.g. TeraSort runs uncompressed
with one replica, its ``TS3R`` variant with three).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cluster.resources import ResourceVector
from repro.errors import SpecificationError


@dataclass(frozen=True)
class CompressionSpec:
    """Map-output compression parameters.

    Compression trades CPU for disk/network I/O (paper §II-A): the spilled
    and shuffled bytes shrink by ``ratio`` while the map (compress) and
    reduce (decompress) sides pay extra CPU work.

    Attributes:
        enabled: whether map-output compression is on (Table I column ``C``).
        ratio: compressed size / uncompressed size.  Snappy on text achieves
            roughly 0.35; on already-random TeraSort data closer to 0.8.
        compress_mb_s: per-core compression throughput, uncompressed MB/s.
        decompress_mb_s: per-core decompression throughput, uncompressed MB/s.
    """

    enabled: bool = False
    ratio: float = 0.35
    compress_mb_s: float = 250.0
    decompress_mb_s: float = 500.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise SpecificationError(f"compression ratio must be in (0, 1]: {self}")
        if self.compress_mb_s <= 0 or self.decompress_mb_s <= 0:
            raise SpecificationError(f"compression throughputs must be positive: {self}")

    @property
    def effective_ratio(self) -> float:
        """The on-disk/on-wire size multiplier (1.0 when disabled)."""
        return self.ratio if self.enabled else 1.0


#: Compression disabled — the default for TeraSort (Table I, ``TS``).
NO_COMPRESSION = CompressionSpec(enabled=False)

#: Snappy-like compression of textual map output (WC, TPC-H intermediates).
SNAPPY_TEXT = CompressionSpec(enabled=True, ratio=0.35)

#: Snappy on high-entropy binary data (TeraSort records barely compress).
SNAPPY_BINARY = CompressionSpec(enabled=True, ratio=0.80)

#: Deflate/gzip on binary data: better ratio, far more CPU — the codec that
#: turns compressed TeraSort (``TSC``) CPU-bound, as Table I annotates.
GZIP_BINARY = CompressionSpec(
    enabled=True, ratio=0.60, compress_mb_s=40.0, decompress_mb_s=120.0
)


@dataclass(frozen=True)
class JobConfig:
    """Framework configuration for one MapReduce job.

    Attributes:
        split_mb: HDFS split size; determines the number of map tasks.
        replicas: HDFS replication factor for the job *output* (Table I
            column ``R``).  The first replica is written locally, each
            further replica crosses the network to a remote disk.
        compression: map-output compression settings.
        map_container: YARN container request for a map task.
        reduce_container: YARN container request for a reduce task.
        io_sort_mb: map-side sort buffer.  When a map task's (compressed)
            output exceeds it, the framework performs an external merge pass
            (extra read + write of the spilled bytes, paper §II-A).
        shuffle_from_cache: when True, shuffle source reads are served from
            the OS buffer cache (the intermediate data "is just written by
            the previous stage", §II-A) and cost no disk bandwidth.
        slowstart: fraction of map tasks that must finish before reduce
            tasks launch.  The paper's state division assumes 1.0 (reduce
            stage strictly follows map stage); the simulator honours other
            values for sensitivity studies.
        task_overhead_s: fixed per-task startup cost (container launch, JVM
            reuse amortised).  Consumed by the simulator only — the analytic
            models deliberately ignore it, which is one genuine source of
            model error.
    """

    split_mb: float = 128.0
    replicas: int = 3
    compression: CompressionSpec = NO_COMPRESSION
    map_container: ResourceVector = ResourceVector(1.0, 2_000.0)
    reduce_container: ResourceVector = ResourceVector(1.0, 3_000.0)
    io_sort_mb: float = 512.0
    shuffle_from_cache: bool = True
    slowstart: float = 1.0
    task_overhead_s: float = 1.0

    def __post_init__(self) -> None:
        if self.split_mb <= 0:
            raise SpecificationError(f"split size must be positive: {self.split_mb}")
        if self.replicas < 1:
            raise SpecificationError(f"replication factor must be >= 1: {self.replicas}")
        if self.io_sort_mb <= 0:
            raise SpecificationError(f"io_sort_mb must be positive: {self.io_sort_mb}")
        if not 0.0 < self.slowstart <= 1.0:
            raise SpecificationError(f"slowstart must be in (0, 1]: {self.slowstart}")
        if self.task_overhead_s < 0:
            raise SpecificationError(f"task overhead must be >= 0: {self.task_overhead_s}")

    def with_(self, **changes) -> "JobConfig":
        """Return a copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)


DEFAULT_CONFIG = JobConfig()
