"""MapReduce substrate: job specifications, configuration, task decomposition."""

from repro.mapreduce.config import (
    CompressionSpec,
    DEFAULT_CONFIG,
    GZIP_BINARY,
    JobConfig,
    NO_COMPRESSION,
    SNAPPY_BINARY,
    SNAPPY_TEXT,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.phases import (
    OP_COMPUTE,
    OP_KINDS,
    OP_READ,
    OP_TRANSFER,
    OP_WRITE,
    OpSpec,
    SubStageSpec,
    build_task_substages,
    map_task_substages,
    reduce_task_substages,
)
from repro.mapreduce.stage import StageKind
from repro.mapreduce.task import NO_SKEW, SkewModel, TaskSpec, build_task_specs

__all__ = [
    "CompressionSpec",
    "DEFAULT_CONFIG",
    "GZIP_BINARY",
    "JobConfig",
    "MapReduceJob",
    "NO_COMPRESSION",
    "NO_SKEW",
    "OP_COMPUTE",
    "OP_KINDS",
    "OP_READ",
    "OP_TRANSFER",
    "OP_WRITE",
    "OpSpec",
    "SNAPPY_BINARY",
    "SNAPPY_TEXT",
    "SkewModel",
    "StageKind",
    "SubStageSpec",
    "TaskSpec",
    "build_task_specs",
    "build_task_substages",
    "map_task_substages",
    "reduce_task_substages",
]
