"""Task decomposition into sub-stages of tuple-level operations.

This module implements the paper's *task execution model* (Fig. 3): a task is
a sequence of sub-stages; within a sub-stage a subset of {read, transfer,
compute, write} operations runs pipelined tuple-by-tuple; a bulk
synchronisation barrier separates consecutive sub-stages.

:func:`build_task_substages` is the single source of truth for what work a
task performs.  Both consumers read it:

* the BOE model evaluates each sub-stage in closed form (Eq. 3-5);
* the simulator turns each sub-stage into a fluid flow and integrates it
  against shared resource pools.

Operation amounts are expressed in the unit their resource pool is measured
in: MB for disk and network, **core-seconds** for CPU (a compute operation
needing ``work_mb / rate_mb_s`` core-seconds, with a per-flow cap of one core,
exactly captures "one pipelined compute thread cannot use more than one
core", §III-A2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.resources import Resource
from repro.errors import SpecificationError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.stage import StageKind

#: Operation kinds of the task execution model (Fig. 3).
OP_READ = "read"
OP_TRANSFER = "transfer"
OP_COMPUTE = "compute"
OP_WRITE = "write"

OP_KINDS = (OP_READ, OP_TRANSFER, OP_COMPUTE, OP_WRITE)


@dataclass(frozen=True)
class OpSpec:
    """One tuple-level operation of a sub-stage.

    Attributes:
        kind: one of :data:`OP_KINDS`.
        resource: the preemptable resource the operation draws on.
        amount: total units the operation must move for the whole sub-stage
            of one task (MB for DISK/NETWORK, core-seconds for CPU).
        per_flow_cap: maximum units/s a single task can push through this
            operation regardless of pool availability.  ``1.0`` for compute
            ops (one core per pipelined thread); ``None`` for I/O ops.
    """

    kind: str
    resource: Resource
    amount: float
    per_flow_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise SpecificationError(f"unknown operation kind: {self.kind}")
        if self.amount < 0:
            raise SpecificationError(f"operation amount must be >= 0: {self}")
        if self.per_flow_cap is not None and self.per_flow_cap <= 0:
            raise SpecificationError(f"per-flow cap must be positive: {self}")


@dataclass(frozen=True)
class SubStageSpec:
    """A pipelined sub-stage: a subset of operations + trailing barrier.

    Attributes:
        name: label used in traces and reports ("map", "merge", "shuffle",
            "reduce").
        ops: the pipelined operations.  Zero-amount operations are dropped
            at construction sites, not here, so the invariant is simply that
            at least one op exists and amounts are non-negative.
    """

    name: str
    ops: Tuple[OpSpec, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise SpecificationError(f"sub-stage {self.name!r} has no operations")

    def amount(self, resource: Resource) -> float:
        """Total units this sub-stage demands from ``resource``."""
        return sum(op.amount for op in self.ops if op.resource is resource)

    def op(self, kind: str) -> Optional[OpSpec]:
        """The operation of the given kind, or None if absent."""
        for candidate in self.ops:
            if candidate.kind == kind:
                return candidate
        return None


def _ops(*candidates: Optional[OpSpec]) -> Tuple[OpSpec, ...]:
    """Drop absent / zero-amount operations (a sub-stage uses a *subset*)."""
    return tuple(op for op in candidates if op is not None and op.amount > 0)


def _compute_op(core_seconds: float) -> Optional[OpSpec]:
    if core_seconds <= 0:
        return None
    return OpSpec(OP_COMPUTE, Resource.CPU, core_seconds, per_flow_cap=1.0)


def map_task_substages(
    job: MapReduceJob, task_input_mb: float, remote_fraction: float = 0.0
) -> List[SubStageSpec]:
    """Sub-stages of one map task processing ``task_input_mb`` of input.

    Pipeline (paper §II-A): read the split from HDFS (data-local, hence a
    disk read), run the map function (+ combiner + serialisation + optional
    compression), spill the output to local disk.  If the spilled output
    exceeds the sort buffer, an external merge pass re-reads and re-writes
    it behind a barrier.  A map-only job instead writes its output to HDFS
    with replication.
    """
    if task_input_mb <= 0:
        raise SpecificationError(f"map task input must be positive: {task_input_mb}")
    cfg = job.config
    comp = cfg.compression
    out_logical = task_input_mb * job.map_selectivity
    out_disk = out_logical * comp.effective_ratio

    core_seconds = task_input_mb / job.map_cpu_mb_s
    if comp.enabled and out_logical > 0:
        core_seconds += out_logical / comp.compress_mb_s

    substages: List[SubStageSpec] = []
    if job.is_map_only:
        # Output goes straight to HDFS: replicas cost disk everywhere and
        # network for every non-local copy.
        disk_write = out_disk * cfg.replicas
        net = out_disk * (cfg.replicas - 1) if cfg.replicas > 1 else 0.0
        substages.append(
            SubStageSpec(
                "map",
                _ops(
                    OpSpec(OP_READ, Resource.DISK, task_input_mb),
                    _compute_op(core_seconds),
                    OpSpec(OP_WRITE, Resource.DISK, disk_write),
                    OpSpec(OP_TRANSFER, Resource.NETWORK, net) if net > 0 else None,
                ),
            )
        )
        return substages

    substages.append(
        SubStageSpec(
            "map",
            _ops(
                OpSpec(OP_READ, Resource.DISK, task_input_mb),
                _compute_op(core_seconds),
                OpSpec(OP_WRITE, Resource.DISK, out_disk) if out_disk > 0 else None,
            ),
        )
    )
    if out_disk > cfg.io_sort_mb:
        # External merge & sort: one extra pass over the spilled bytes,
        # blocked behind the map pipeline (bulk synchronisation).
        merge_cpu = _compute_op(out_logical / (4.0 * job.map_cpu_mb_s))
        substages.append(
            SubStageSpec(
                "merge",
                _ops(
                    OpSpec(OP_READ, Resource.DISK, out_disk),
                    merge_cpu,
                    OpSpec(OP_WRITE, Resource.DISK, out_disk),
                ),
            )
        )
    return substages


def reduce_task_substages(
    job: MapReduceJob, task_shuffle_mb: float, remote_fraction: float
) -> List[SubStageSpec]:
    """Sub-stages of one reduce task receiving ``task_shuffle_mb`` (on-wire).

    Pipeline: **shuffle** copies this task's partition from every map output
    (reads served by the OS buffer cache when ``shuffle_from_cache``),
    crossing the network for the remote fraction, and materialises the
    reduce input on local disk (§II-A: "the reduce input is materialized on
    the disk").  Behind the barrier, **reduce** re-reads the materialised
    input, runs the reduce function (+ decompression) and writes the output
    to HDFS with ``replicas`` copies — the first local, the rest across the
    network onto remote disks.
    """
    if task_shuffle_mb < 0:
        raise SpecificationError(f"reduce task input must be >= 0: {task_shuffle_mb}")
    if not 0.0 <= remote_fraction <= 1.0:
        raise SpecificationError(f"remote fraction must be in [0,1]: {remote_fraction}")
    cfg = job.config
    comp = cfg.compression
    in_logical = task_shuffle_mb / comp.effective_ratio
    out = in_logical * job.reduce_selectivity

    shuffle_ops = _ops(
        None
        if cfg.shuffle_from_cache
        else OpSpec(OP_READ, Resource.DISK, task_shuffle_mb),
        OpSpec(OP_TRANSFER, Resource.NETWORK, task_shuffle_mb * remote_fraction),
        OpSpec(OP_WRITE, Resource.DISK, task_shuffle_mb),
    )

    core_seconds = in_logical / job.reduce_cpu_mb_s
    if comp.enabled and in_logical > 0:
        core_seconds += in_logical / comp.decompress_mb_s
    reduce_ops = _ops(
        OpSpec(OP_READ, Resource.DISK, task_shuffle_mb),
        _compute_op(core_seconds),
        OpSpec(OP_WRITE, Resource.DISK, out * cfg.replicas) if out > 0 else None,
        OpSpec(OP_TRANSFER, Resource.NETWORK, out * (cfg.replicas - 1))
        if out > 0 and cfg.replicas > 1
        else None,
    )

    substages: List[SubStageSpec] = []
    if shuffle_ops:
        substages.append(SubStageSpec("shuffle", shuffle_ops))
    if reduce_ops:
        substages.append(SubStageSpec("reduce", reduce_ops))
    if not substages:
        # An empty reduce partition (possible under heavy skew) still runs a
        # task that sets up, finds nothing, and exits: represent it as a
        # nominal sliver of compute so the engine and models handle it
        # uniformly instead of special-casing zero-work tasks.
        substages.append(
            SubStageSpec("reduce", (OpSpec(OP_COMPUTE, Resource.CPU, 1e-9, 1.0),))
        )
    return substages


def build_task_substages(
    job: MapReduceJob,
    kind: StageKind,
    task_input_mb: Optional[float] = None,
    remote_fraction: float = 0.9,
) -> List[SubStageSpec]:
    """Sub-stages of one task of ``job``'s ``kind`` stage.

    Args:
        job: the job specification.
        kind: MAP or REDUCE.
        task_input_mb: per-task input volume; defaults to the job's average
            (total stage input / task count).  The simulator passes skewed
            per-task values here.
        remote_fraction: fraction of shuffle / replica traffic that crosses
            the network — ``Cluster.remote_fraction`` for real clusters,
            0 for a single node.
    """
    if task_input_mb is None:
        task_input_mb = job.task_input_mb(kind)
    # Extension hook: frameworks with different task anatomies (e.g. the
    # Spark stages of repro.spark) provide their own decomposition while
    # reusing every consumer of this function (simulator, BOE, estimator).
    custom = getattr(job, "custom_task_substages", None)
    if custom is not None:
        return custom(kind, task_input_mb, remote_fraction)
    if kind is StageKind.MAP:
        return map_task_substages(job, task_input_mb, remote_fraction)
    if job.is_map_only:
        raise SpecificationError(f"job {job.name} is map-only but REDUCE was requested")
    return reduce_task_substages(job, task_input_mb, remote_fraction)
