"""Per-task input sizing, including data skew.

The analytic models reason about the *average* task; the simulator runs
individual tasks, whose input sizes differ for two reasons:

* **split raggedness** — the last HDFS split of a file is usually short;
* **partition skew** — reduce partitions are hash buckets of keys, and real
  key distributions are skewed.  The paper's Alg2-Normal estimator exists
  precisely to absorb this (task times modelled as a normal distribution).

:class:`SkewModel` produces deterministic per-task sizes that sum exactly to
the stage total, so the simulator conserves bytes regardless of skew.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import SpecificationError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.stage import StageKind, stage_input_mb


@dataclass(frozen=True)
class SkewModel:
    """Lognormal multiplicative skew on per-task input sizes.

    ``sigma = 0`` yields perfectly uniform tasks.  Sizes are drawn from
    ``LogNormal(0, sigma)`` and rescaled so the stage total is conserved,
    which keeps the coefficient of variation ~``sigma`` for small sigma.

    Attributes:
        sigma: lognormal shape parameter for *reduce* partitions (0 = no
            skew; 0.2 = mild; 0.6 = heavy).  Reduce inputs are hash buckets
            of real keys and carry the key distribution's skew.
        map_sigma: shape parameter for map splits.  HDFS splits are fixed-
            size blocks, so their raggedness is much smaller than partition
            skew; defaults to ``sigma / 4``.
        seed: base RNG seed; combined with the job/stage identity so that
            different stages of the same run are independently skewed yet
            the whole experiment stays reproducible.
    """

    sigma: float = 0.0
    map_sigma: Optional[float] = None
    seed: int = 7

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise SpecificationError(f"skew sigma must be >= 0: {self.sigma}")
        if self.map_sigma is not None and self.map_sigma < 0:
            raise SpecificationError(f"map sigma must be >= 0: {self.map_sigma}")

    def sigma_for(self, kind: StageKind) -> float:
        """The shape parameter applying to the given stage kind."""
        if kind is StageKind.MAP:
            return self.map_sigma if self.map_sigma is not None else self.sigma / 4.0
        return self.sigma

    def task_sizes(
        self,
        total_mb: float,
        num_tasks: int,
        salt: str = "",
        sigma: Optional[float] = None,
    ) -> List[float]:
        """Deterministic per-task sizes summing to ``total_mb``.

        ``sigma`` overrides the reduce-side default shape parameter (the
        caller passes :meth:`sigma_for` for the stage at hand).
        """
        if num_tasks <= 0:
            raise SpecificationError(f"task count must be positive: {num_tasks}")
        if total_mb < 0:
            raise SpecificationError(f"total size must be >= 0: {total_mb}")
        shape = self.sigma if sigma is None else sigma
        if num_tasks == 1 or shape == 0.0 or total_mb == 0.0:
            return [total_mb / num_tasks] * num_tasks
        # hash() is salted per interpreter run; use a stable digest so runs
        # reproduce across processes.
        import zlib

        seed = zlib.crc32(f"{self.seed}/{salt}".encode()) & 0xFFFFFFFF
        rng = np.random.default_rng(seed)
        raw = rng.lognormal(mean=0.0, sigma=shape, size=num_tasks)
        scale = total_mb / float(raw.sum())
        return [float(x * scale) for x in raw]


NO_SKEW = SkewModel(sigma=0.0)


@dataclass(frozen=True)
class TaskSpec:
    """One concrete task instance handed to the simulator.

    Attributes:
        job_name: owning job.
        kind: MAP or REDUCE.
        index: task number within the stage.
        input_mb: this task's input volume (skewed).
    """

    job_name: str
    kind: StageKind
    index: int
    input_mb: float

    @property
    def task_id(self) -> str:
        prefix = "m" if self.kind is StageKind.MAP else "r"
        return f"{self.job_name}/{prefix}{self.index}"


def build_task_specs(
    job: MapReduceJob, kind: StageKind, skew: SkewModel = NO_SKEW
) -> List[TaskSpec]:
    """All task instances of one stage, with skewed sizes conserving bytes."""
    n = job.num_tasks(kind)
    if n == 0:
        return []
    total = stage_input_mb(job, kind)
    sizes = skew.task_sizes(
        total, n, salt=f"{job.name}/{kind.value}", sigma=skew.sigma_for(kind)
    )
    return [
        TaskSpec(job_name=job.name, kind=kind, index=i, input_mb=sizes[i])
        for i in range(n)
    ]
