"""Stage kinds and stage-level data-flow arithmetic.

A MapReduce job is divided into map, shuffle and reduce *stages* (paper
§II-A).  Following the paper's execution model, the shuffle is carried by the
reduce tasks (their first sub-stage), so a job contributes exactly two
*schedulable* stages — MAP and REDUCE — and the workflow-level state
transitions happen at map->reduce boundaries (Fig. 5).

The functions here compute the byte volumes flowing through each stage from a
job's selectivities; they are the single source of truth used by both the BOE
model and the simulator.
"""

from __future__ import annotations

import enum
import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.mapreduce.job import MapReduceJob


class StageKind(enum.Enum):
    """Schedulable stage of a MapReduce job."""

    MAP = "map"
    REDUCE = "reduce"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def order(self) -> int:
        """MAP precedes REDUCE within a job."""
        return 0 if self is StageKind.MAP else 1


def num_map_tasks(input_mb: float, split_mb: float) -> int:
    """Number of map tasks for ``input_mb`` of input at the given split size."""
    if input_mb <= 0:
        raise ValueError(f"input size must be positive: {input_mb}")
    return max(1, math.ceil(input_mb / split_mb))


def map_output_mb(job: "MapReduceJob") -> float:
    """Uncompressed map-output volume of the whole job, in MB."""
    return job.input_mb * job.map_selectivity


def map_output_on_disk_mb(job: "MapReduceJob") -> float:
    """Map-output volume as materialised on disk / shipped on the wire.

    This is where map-output compression takes effect: the spilled and
    shuffled representation shrinks by the compression ratio.
    """
    return map_output_mb(job) * job.config.compression.effective_ratio


def shuffle_mb(job: "MapReduceJob") -> float:
    """Total bytes copied by the shuffle (compressed representation)."""
    return map_output_on_disk_mb(job)


def reduce_input_mb(job: "MapReduceJob") -> float:
    """Logical (uncompressed) bytes entering the reduce functions."""
    return map_output_mb(job)


def reduce_output_mb(job: "MapReduceJob") -> float:
    """Bytes written to HDFS by the whole reduce stage (one replica's worth)."""
    return reduce_input_mb(job) * job.reduce_selectivity


def stage_input_mb(job: "MapReduceJob", kind: StageKind) -> float:
    """Total input volume of the given stage, in the units the stage reads.

    MAP reads the (uncompressed) job input; REDUCE reads the compressed
    shuffle representation.
    """
    if kind is StageKind.MAP:
        return job.input_mb
    return shuffle_mb(job)
